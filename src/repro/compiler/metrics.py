"""Schedule statistics and comparison reports (Fig. 8).

Summarizes what multi-issue reordering buys: total cycles before and
after, issue-width distribution, and node utilization.
"""

from __future__ import annotations

from dataclasses import dataclass

from .kernels import NetworkProgram
from .scheduler import Schedule, ScheduleOptions, schedule_program

__all__ = [
    "SchedulingComparison",
    "compare_scheduling",
    "dependency_edge_count",
    "render_occupancy",
]


@dataclass(frozen=True)
class SchedulingComparison:
    """Before/after-reordering metrics of one network program."""

    name: str
    c: int
    n_ops: int
    cycles_before: int
    cycles_after: int
    mean_issue_width: float
    utilization_before: float
    utilization_after: float
    n_prefetch: int

    @property
    def speedup(self) -> float:
        return self.cycles_before / self.cycles_after if self.cycles_after else 0.0

    def rows(self) -> list[tuple[str, str]]:
        """Key/value rows for the report renderer."""
        return [
            ("program", self.name),
            ("network width C", str(self.c)),
            ("network instructions", str(self.n_ops)),
            ("cycles before reordering", str(self.cycles_before)),
            ("cycles after reordering", str(self.cycles_after)),
            ("cycle reduction", f"{self.speedup:.2f}x"),
            ("mean issue width", f"{self.mean_issue_width:.2f}"),
            ("node utilization before", f"{self.utilization_before:.3f}"),
            ("node utilization after", f"{self.utilization_after:.3f}"),
            ("prefetch copies inserted", str(self.n_prefetch)),
        ]


def dependency_edge_count(program: NetworkProgram) -> int:
    """Number of data-dependency edges in a program's dependency graph.

    Counts producer→consumer pairs over locations (RAW edges from the
    most recent writer, plus WAR/WAW ordering edges), the quantity
    behind the paper's Fig. 8 observation that the factorization's
    dependency graph has "orders of magnitude more edges" than the
    multiplication case.
    """
    last_writer: dict = {}
    readers_since_write: dict = {}
    edges = 0
    for idx, op in enumerate(program.ops):
        for loc in op.all_read_locations():
            if loc in last_writer:
                edges += 1  # RAW
            readers_since_write.setdefault(loc, []).append(idx)
        for loc, _acc in op.writes:
            if loc in last_writer:
                edges += 1  # WAW
            edges += len(readers_since_write.get(loc, ()))  # WAR
            readers_since_write[loc] = []
            last_writer[loc] = idx
    return edges


def render_occupancy(
    schedule: Schedule, *, start: int = 0, count: int = 24
) -> str:
    """ASCII Gantt of per-slot network occupancy (a textual Fig. 8).

    One line per issue slot: issue width, busy-node fraction as a bar,
    and the tags of the co-issued instructions.
    """
    from ..arch.topology import Butterfly
    from ..arch.simulator import op_occupancy

    bf = Butterfly(schedule.c)
    total = bf.num_nodes
    lines = [f"slot | width | occupancy ({total} nodes)"]
    for t in range(start, min(start + count, len(schedule.slots))):
        bundle = schedule.slots[t]
        busy = 0
        for op in bundle:
            busy += bin(op_occupancy(op, bf) & bf.full_mask()).count("1")
        bar_len = int(round(20 * busy / total))
        tags = ",".join((op.tag or op.kind.value) for op in bundle[:3])
        if len(bundle) > 3:
            tags += f",+{len(bundle) - 3}"
        lines.append(
            f"{t:4d} | {len(bundle):5d} | "
            f"[{'#' * bar_len}{'.' * (20 - bar_len)}] {tags}"
        )
    return "\n".join(lines)


def compare_scheduling(
    program: NetworkProgram, c: int, *, prefetch: bool = True
) -> SchedulingComparison:
    """Schedule a program with and without multi-issue (Fig. 8)."""
    before = schedule_program(
        program, c, ScheduleOptions(multi_issue=False, prefetch=False)
    )
    after = schedule_program(
        program, c, ScheduleOptions(multi_issue=True, prefetch=prefetch)
    )
    return SchedulingComparison(
        name=program.name,
        c=c,
        n_ops=len(program.ops),
        cycles_before=before.cycles,
        cycles_after=after.cycles,
        mean_issue_width=after.mean_issue_width(),
        utilization_before=before.occupancy_utilization(),
        utilization_after=after.occupancy_utilization(),
        n_prefetch=after.n_prefetch,
    )
