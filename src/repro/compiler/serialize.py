"""Serialization of scheduled network programs.

The paper's system compiles a sparsity pattern into "executable files"
that are shipped to the prototype over PCIe and reused for every
numeric instance.  This module provides that artifact: a JSON-based
container for a :class:`~repro.compiler.scheduler.Schedule` that can be
written to disk, shipped, reloaded, and executed on the simulator —
without re-running the compiler.

The format stores, per issue slot, the full network-instruction
description (kind, locations, stream references by name/indices, lanes,
scalars).  Stream *values* are intentionally not stored: they bind at
run time, which is exactly what makes the artifact instance-agnostic.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..arch.isa import EwiseFn, Location, NetOp, OpKind, StreamRef
from ..arch.simulator import SimulationStats
from .scheduler import Schedule

__all__ = [
    "FORMAT_VERSION",
    "SerializationError",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
    "simulation_stats_to_dict",
    "simulation_stats_from_dict",
]

FORMAT_VERSION = 1


class SerializationError(ValueError):
    """A schedule container is malformed or from an unknown format
    version.  Subclasses :class:`ValueError` for compatibility; the
    compilation cache catches it to trigger load-or-recompile."""


def _loc_to_list(loc: Location) -> list:
    return [loc.space, int(loc.bank), int(loc.addr)]


def _loc_from_list(raw: list) -> Location:
    return Location(str(raw[0]), int(raw[1]), int(raw[2]))


def _op_to_dict(op: NetOp) -> dict:
    out: dict = {
        "kind": op.kind.value,
        "reads": [_loc_to_list(l) for l in op.reads],
        "writes": [[_loc_to_list(l), bool(acc)] for l, acc in op.writes],
        "src_lanes": list(op.src_lanes),
        "dst_lanes": list(op.dst_lanes),
        "tag": op.tag,
    }
    if op.coeffs is not None:
        if isinstance(op.coeffs, StreamRef):
            out["stream"] = [op.coeffs.name, op.coeffs.indices.tolist()]
        else:
            out["immediates"] = np.asarray(op.coeffs).tolist()
    if op.coeff_reads:
        out["coeff_reads"] = [_loc_to_list(l) for l in op.coeff_reads]
    if op.ewise_fn is not None:
        out["ewise_fn"] = op.ewise_fn.value
    if op.scalars:
        out["scalars"] = list(op.scalars)
    if op.coeff_scale != 1.0:
        out["coeff_scale"] = op.coeff_scale
    seq = getattr(op, "_seq", None)
    if seq is not None:
        out["seq"] = int(seq)
    return out


def _op_from_dict(raw: dict) -> NetOp:
    coeffs = None
    if "stream" in raw:
        name, indices = raw["stream"]
        coeffs = StreamRef(name, np.asarray(indices, dtype=np.int64))
    elif "immediates" in raw:
        coeffs = np.asarray(raw["immediates"], dtype=np.float64)
    op = NetOp(
        kind=OpKind(raw["kind"]),
        reads=[_loc_from_list(l) for l in raw["reads"]],
        writes=[(_loc_from_list(l), bool(acc)) for l, acc in raw["writes"]],
        coeffs=coeffs,
        coeff_reads=[_loc_from_list(l) for l in raw.get("coeff_reads", [])],
        src_lanes=[int(x) for x in raw["src_lanes"]],
        dst_lanes=[int(x) for x in raw["dst_lanes"]],
        ewise_fn=EwiseFn(raw["ewise_fn"]) if "ewise_fn" in raw else None,
        scalars=tuple(raw.get("scalars", ())),
        coeff_scale=float(raw.get("coeff_scale", 1.0)),
        tag=raw.get("tag", ""),
    )
    if "seq" in raw:
        op._seq = int(raw["seq"])
    return op


def schedule_to_dict(schedule: Schedule) -> dict:
    """Portable dictionary form of a schedule."""
    return {
        "format_version": FORMAT_VERSION,
        "name": schedule.name,
        "c": schedule.c,
        "n_ops": schedule.n_ops,
        "n_prefetch": schedule.n_prefetch,
        "extra_latency": schedule.extra_latency,
        "slots": [[_op_to_dict(op) for op in bundle] for bundle in schedule.slots],
    }


def schedule_from_dict(raw: dict) -> Schedule:
    """Reconstruct a schedule saved by :func:`schedule_to_dict`."""
    version = raw.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported schedule format version {version!r}"
        )
    return Schedule(
        name=raw["name"],
        c=int(raw["c"]),
        slots=[[_op_from_dict(op) for op in bundle] for bundle in raw["slots"]],
        n_ops=int(raw["n_ops"]),
        n_prefetch=int(raw.get("n_prefetch", 0)),
        extra_latency=int(raw.get("extra_latency", 0)),
    )


def save_schedule(schedule: Schedule, path: str | Path) -> Path:
    """Write a schedule to a JSON executable file."""
    path = Path(path)
    path.write_text(json.dumps(schedule_to_dict(schedule)))
    return path


def load_schedule(path: str | Path, *, validate: bool = True) -> Schedule:
    """Load a schedule from a JSON executable file.

    With ``validate`` (default), the structural constraints of every
    slot are re-checked so a corrupted or tampered executable fails at
    load time rather than mid-solve.
    """
    schedule = schedule_from_dict(json.loads(Path(path).read_text()))
    if validate:
        from .scheduler import validate_schedule

        validate_schedule(schedule)
    return schedule


def simulation_stats_to_dict(stats: SimulationStats) -> dict:
    """Portable dictionary form of one kernel's simulation counters.

    Used by the compilation cache to persist the precomputed stats of a
    validated replay trace (histogram keys become strings for JSON).
    """
    return {
        "cycles": int(stats.cycles),
        "instructions": int(stats.instructions),
        "bundles": int(stats.bundles),
        "latency": int(stats.latency),
        "issue_width_histogram": {
            str(k): int(v) for k, v in stats.issue_width_histogram.items()
        },
        "node_cycles_busy": int(stats.node_cycles_busy),
        "host_crossings": int(stats.host_crossings),
        "phases_executed": int(stats.phases_executed),
    }


def simulation_stats_from_dict(raw: dict) -> SimulationStats:
    """Reconstruct counters saved by :func:`simulation_stats_to_dict`."""
    return SimulationStats(
        cycles=int(raw["cycles"]),
        instructions=int(raw["instructions"]),
        bundles=int(raw["bundles"]),
        latency=int(raw["latency"]),
        issue_width_histogram={
            int(k): int(v)
            for k, v in raw.get("issue_width_histogram", {}).items()
        },
        node_cycles_busy=int(raw.get("node_cycles_busy", 0)),
        host_crossings=int(raw.get("host_crossings", 0)),
        phases_executed=int(raw.get("phases_executed", 0)),
    )
