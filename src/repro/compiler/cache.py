"""Pattern-keyed compilation cache.

The paper's whole economic argument is compile-once/solve-many: a QP
sparsity pattern is scheduled once and the resulting executable serves
every numeric instance that shares the pattern (Section III-D).  This
module supplies the missing amortization machinery: a *stable
fingerprint* of (sparsity pattern, architecture configuration) and a
two-level memo — an in-memory LRU for repeated constructions inside one
process, and an on-disk store of JSON executables (the
:mod:`~repro.compiler.serialize` format) that survives across processes
and benchmark reruns.

Key properties:

* **Pattern-exact keys** — the fingerprint hashes the CSC structure
  (``indptr``/``indices``/shape) of ``P``'s upper triangle and ``A``,
  never the values, so two patterns with equal shapes but different
  structure can never collide, while every numeric instance of one
  pattern maps to the same key.
* **Config-complete keys** — the network width ``C``, algorithm
  variant, fill-reducing ordering, triangular-solve lowering, every
  :class:`~repro.compiler.scheduler.ScheduleOptions` field and the two
  settings baked into compiled immediates (``sigma``, ``alpha``) all
  enter the hash; changing any of them changes the key.
* **Corruption-safe loads** — a missing, truncated, version-mismatched
  or otherwise undecodable cache file is *never* an error: the lookup
  reports a miss (and bumps a counter) and the caller recompiles.  A
  loaded artifact is structurally re-validated before it is trusted.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .scheduler import Schedule, ScheduleOptions, validate_schedule
from .serialize import (
    FORMAT_VERSION,
    SerializationError,
    schedule_from_dict,
    schedule_to_dict,
    simulation_stats_from_dict,
    simulation_stats_to_dict,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "CompiledArtifact",
    "ScheduleCache",
    "VectorSlot",
    "pattern_fingerprint",
]

# Version of the on-disk artifact container.  Bump whenever the
# artifact layout, the register-file allocation discipline, or the
# meaning of any hashed field changes; old files then silently miss.
# v2: added the per-kernel replay-trace validation stamps (``traces``).
# v3: added the whole-iteration fusion stamps (``fusion``).
CACHE_FORMAT_VERSION = 3


def pattern_fingerprint(
    problem,
    *,
    variant: str,
    c: int,
    options: ScheduleOptions,
    ordering: str = "amd",
    lower_method: str = "column",
    sigma: float = 1e-6,
    alpha: float = 1.6,
) -> str:
    """Stable hex key for (sparsity pattern, architecture config).

    ``sigma`` and ``alpha`` participate because the lowering bakes them
    into instruction immediates (the ``axpby``/``ew_scale`` scalars of
    the ADMM vector kernels); all other solver settings only affect
    run-time streams and control flow, never the compiled program.
    """
    header = {
        "cache_format": CACHE_FORMAT_VERSION,
        "schedule_format": FORMAT_VERSION,
        "c": int(c),
        "variant": str(variant),
        "ordering": str(ordering),
        "lower_method": str(lower_method),
        "sigma": float(sigma),
        "alpha": float(alpha),
        "options": {
            k: v if isinstance(v, (bool, int, float, str)) else repr(v)
            for k, v in sorted(dataclasses.asdict(options).items())
        },
    }
    h = hashlib.sha256()
    h.update(json.dumps(header, sort_keys=True).encode())
    for label, mat in (("P", problem.p_upper), ("A", problem.a)):
        h.update(label.encode())
        h.update(np.asarray(mat.shape, dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(mat.indptr, dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(mat.indices, dtype=np.int64).tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class VectorSlot:
    """One named register-file region of a compiled solver binary.

    Recorded so a cache hit can reproduce the exact allocator state the
    schedules were compiled against (ops reference absolute bank/address
    locations).
    """

    name: str
    length: int
    rotation: int
    base: int


@dataclass
class CompiledArtifact:
    """Everything a warm :class:`~repro.backends.mib.MIBSolver` needs to
    skip lowering and scheduling: the per-kernel schedules, the
    register-file layout they were compiled against, and the replay
    trace stamps.

    ``traces`` maps kernel name to the validation stamp emitted by
    :meth:`~repro.arch.trace.CompiledTrace.summary`: the architecture
    configuration the trace was validated for, its layout shape, and
    the precomputed :class:`~repro.arch.simulator.SimulationStats`.  A
    matching stamp lets a warm solver lower the schedule straight to a
    trace with hazard validation skipped (it already passed for this
    exact schedule/configuration pair).

    ``fusion`` maps fused-trace name (``"iteration"``) to the stamp
    emitted by :meth:`~repro.arch.fusion.FusedTrace.summary`; a
    matching stamp lets a warm solver re-fuse the iteration kernels
    with the buffer-plan verification skipped.
    """

    key: str
    schedules: dict[str, Schedule]
    vectors: list[VectorSlot]
    traces: dict[str, dict] = field(default_factory=dict)
    fusion: dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "cache_format_version": CACHE_FORMAT_VERSION,
            "key": self.key,
            "vectors": [
                [v.name, v.length, v.rotation, v.base] for v in self.vectors
            ],
            "schedules": {
                name: schedule_to_dict(s) for name, s in self.schedules.items()
            },
            "traces": {
                name: {
                    **{k: v for k, v in stamp.items() if k != "stats"},
                    "stats": simulation_stats_to_dict(stamp["stats"]),
                }
                for name, stamp in self.traces.items()
            },
            "fusion": {
                name: dict(stamp) for name, stamp in self.fusion.items()
            },
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "CompiledArtifact":
        version = raw.get("cache_format_version")
        if version != CACHE_FORMAT_VERSION:
            raise SerializationError(
                f"unsupported cache format version {version!r}"
            )
        return cls(
            key=str(raw["key"]),
            schedules={
                str(name): schedule_from_dict(s)
                for name, s in raw["schedules"].items()
            },
            vectors=[
                VectorSlot(str(n), int(l), int(r), int(b))
                for n, l, r, b in raw["vectors"]
            ],
            traces={
                str(name): {
                    **{k: v for k, v in stamp.items() if k != "stats"},
                    "stats": simulation_stats_from_dict(stamp["stats"]),
                }
                for name, stamp in raw.get("traces", {}).items()
            },
            fusion={
                str(name): dict(stamp)
                for name, stamp in raw.get("fusion", {}).items()
            },
        )


@dataclass
class CacheStats:
    """Hit/miss/evict observability, surfaced in suite summaries."""

    hits: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_errors: int = 0  # corrupt / truncated / version-mismatched files
    restore_errors: int = 0  # artifact loaded but could not be applied

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def rows(self) -> list[tuple[str, object]]:
        """Key/value rows for :func:`~repro.analysis.report.kv_block`."""
        return [
            ("cache lookups", self.lookups),
            ("cache hits (memory / disk)", f"{self.memory_hits} / {self.disk_hits}"),
            ("cache misses", self.misses),
            ("cache hit rate", f"{self.hit_rate:.1%}"),
            ("cache stores", self.stores),
            ("cache evictions", self.evictions),
            ("cache load errors", self.disk_errors + self.restore_errors),
        ]

    def merge(self, other: "CacheStats") -> None:
        for f in dataclasses.fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


class ScheduleCache:
    """Two-level (LRU memory + disk) cache of compiled solver binaries.

    Parameters
    ----------
    cache_dir:
        Directory for persisted artifacts (``<key>.mibc`` JSON files);
        ``None`` keeps the cache memory-only.  Multiple processes may
        share one directory — writes are atomic (write-temp + rename)
        and loads tolerate any corruption by recompiling.
    max_entries:
        In-memory LRU capacity (artifacts, not bytes).  Eviction only
        drops the memory copy; the disk copy, if any, survives.

    Thread safety: the in-memory LRU and the statistics counters are
    guarded by one lock, so a single cache may be shared by the serve
    layer's worker threads.  Disk I/O happens *outside* the lock — two
    threads may both miss and both store (last atomic rename wins, the
    artifacts are identical by construction), and a read racing a
    writer at worst observes a missing/partial file, which the
    load-or-recompile discipline already absorbs as a miss.
    """

    def __init__(
        self, cache_dir: str | Path | None = None, *, max_entries: int = 64
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self._memory: OrderedDict[str, CompiledArtifact] = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def key_for(
        self,
        problem,
        *,
        variant: str,
        c: int,
        options: ScheduleOptions,
        ordering: str = "amd",
        lower_method: str = "column",
        settings=None,
    ) -> str:
        """Fingerprint a problem + configuration (see
        :func:`pattern_fingerprint`)."""
        sigma = float(settings.sigma) if settings is not None else 1e-6
        alpha = float(settings.alpha) if settings is not None else 1.6
        return pattern_fingerprint(
            problem,
            variant=variant,
            c=c,
            options=options,
            ordering=ordering,
            lower_method=lower_method,
            sigma=sigma,
            alpha=alpha,
        )

    def path_for(self, key: str) -> Path | None:
        """On-disk location of one artifact (``None`` if memory-only)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.mibc"

    # ------------------------------------------------------------------
    def get(self, key: str) -> CompiledArtifact | None:
        """Look up a compiled artifact; ``None`` means recompile."""
        with self._lock:
            artifact = self._memory.get(key)
            if artifact is not None:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                self.stats.memory_hits += 1
                return artifact
        artifact = self._load_disk(key)
        with self._lock:
            if artifact is not None:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._remember(key, artifact)
                return artifact
            self.stats.misses += 1
            return None

    def put(self, key: str, artifact: CompiledArtifact) -> None:
        """Store a freshly compiled artifact (memory + disk)."""
        with self._lock:
            self.stats.stores += 1
            self._remember(key, artifact)
        self._store_disk(key, artifact)

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        path = self.path_for(key)
        return path is not None and path.exists()

    # ------------------------------------------------------------------
    def _remember(self, key: str, artifact: CompiledArtifact) -> None:
        self._memory[key] = artifact
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _load_disk(self, key: str) -> CompiledArtifact | None:
        """Load-or-recompile discipline: any failure is a miss."""
        path = self.path_for(key)
        if path is None or not path.exists():
            return None
        try:
            artifact = CompiledArtifact.from_dict(json.loads(path.read_text()))
            if artifact.key != key:
                raise SerializationError("artifact key mismatch")
            for schedule in artifact.schedules.values():
                validate_schedule(schedule)
        except Exception:
            # Truncated file, bad JSON, version mismatch, tampered
            # schedule — silently fall back to recompilation.
            with self._lock:
                self.stats.disk_errors += 1
            return None
        return artifact

    def _store_disk(self, key: str, artifact: CompiledArtifact) -> None:
        path = self.path_for(key)
        if path is None:
            return
        payload = json.dumps(artifact.to_dict())
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            tmp.write_text(payload)
            os.replace(tmp, path)
        except OSError:
            # A read-only or vanished cache dir degrades to memory-only.
            with self._lock:
                self.stats.disk_errors += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
