"""Multi-issue network-instruction scheduling (Section IV).

Turns a lowered :class:`~repro.compiler.kernels.NetworkProgram` (a
sequential initial order) into per-cycle issue bundles.

Two modes:

* ``multi_issue=False`` — the "before reordering" baseline of Fig. 8:
  one instruction per slot, stalling on data hazards (empty slots where
  a result is still in flight);
* ``multi_issue=True`` — the paper's first-fit bin packing: each
  instruction's hardware request is its node-occupancy bitvector
  (length ``C(log₂C+1)`` plus the scalar unit) together with its
  register-file port usage; walking the initial order, each instruction
  is placed in the first slot where (a) all data dependencies have
  committed, and (b) no structural resource collides.

Structural read-port conflicts can additionally be broken by *data
prefetching* (Section IV-A): when a read port blocks an otherwise-early
placement, the scheduler inserts a copy instruction in an earlier free
slot that moves the operand to an idle bank and rewrites the blocked
instruction to read the copy.

The scheduler is conservative and the
:class:`~repro.arch.simulator.NetworkSimulator` re-verifies every
constraint at execution time, so a scheduling bug cannot silently
corrupt results.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..arch.isa import Location, NetOp, OpKind
from ..arch.simulator import SCALAR_UNITS, op_duration, op_occupancy
from ..arch.topology import Butterfly
from .kernels import NetworkProgram

__all__ = ["Schedule", "ScheduleOptions", "schedule_program", "validate_schedule"]


@dataclass
class ScheduleOptions:
    """Knobs for the scheduling ablations of DESIGN.md §4.

    ``mode`` selects the scheduling style:

    * ``"static"`` — the paper's compile-time first-fit bin packing
      (Section IV); unbounded lookahead, optional data prefetching.
    * ``"dynamic"`` — the paper's *future-work* direction ("dynamic
      multiple-instruction-issue and reordering"): a run-time
      scoreboard that each cycle issues any ready, structurally
      compatible instructions from a bounded in-order window of size
      ``dynamic_window``.  No prefetch rewriting (hardware would need
      register renaming for that).
    """

    multi_issue: bool = True
    prefetch: bool = True
    max_prefetch: int = 4096  # cap on inserted copy instructions
    window: int = 1 << 20  # give-up bound when scanning for a slot
    mode: str = "static"
    dynamic_window: int = 16
    # Super-pipelining (paper future work): extra register stages in the
    # datapath raise the clock but lengthen the commit latency the
    # scheduler must respect.
    extra_latency: int = 0
    # Instruction priority for static first-fit: "program" keeps the
    # lowering order (the paper's method); "critical_path" list-schedules
    # by dependency height, releasing long chains first.
    priority: str = "program"


@dataclass
class Schedule:
    """A scheduled network program."""

    name: str
    c: int
    slots: list[list[NetOp]]
    n_ops: int
    n_prefetch: int = 0
    extra_latency: int = 0  # super-pipelining register stages

    @property
    def n_slots(self) -> int:
        return len(self.slots)

    @property
    def cycles(self) -> int:
        """Total execution cycles including pipeline drain."""
        return len(self.slots) + Butterfly(self.c).latency + self.extra_latency

    def issue_width_histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for bundle in self.slots:
            if bundle:
                hist[len(bundle)] = hist.get(len(bundle), 0) + 1
        return hist

    def mean_issue_width(self) -> float:
        busy = [len(b) for b in self.slots if b]
        return sum(busy) / len(busy) if busy else 0.0

    def occupancy_utilization(self) -> float:
        """Busy-node-cycles over total node-cycles (temporal+spatial
        utilization, the quantity multi-issue exists to raise)."""
        bf = Butterfly(self.c)
        total = bf.num_nodes * max(1, len(self.slots))
        busy = 0
        for bundle in self.slots:
            for op in bundle:
                busy += bin(op_occupancy(op, bf) & bf.full_mask()).count("1")
        return busy / total


class _SlotState:
    """Per-cycle structural bookkeeping."""

    __slots__ = ("occ", "read_banks", "write_banks", "scalars")

    def __init__(self) -> None:
        self.occ = 0
        self.read_banks: set[int] = set()
        self.write_banks: set[int] = set()
        self.scalars = 0


def _op_port_usage(op: NetOp) -> tuple[list[set[int]], list[set[int]]]:
    """Per-cycle read/write bank sets (index = cycle offset).

    Binary element-wise instructions double-pump: the first operand
    block is read in the issue cycle, the second in the next.
    """
    dur = op_duration(op)
    writes = {loc.bank for loc in op.rf_writes()}
    if dur == 1:
        return [{loc.bank for loc in op.rf_reads()}], [writes]
    width = len(op.writes)
    rf_reads = op.reads  # binary EWISE reads are all rf by construction
    first = {loc.bank for loc in rf_reads[:width] if loc.space == "rf"}
    second = {loc.bank for loc in rf_reads[width:] if loc.space == "rf"}
    return [first, second], [set(), writes]


@dataclass
class _Tracker:
    """Data-dependency bookkeeping across placed instructions."""

    ready: dict[Location, int] = field(default_factory=dict)  # commit cycle
    last_read: dict[Location, int] = field(default_factory=dict)
    last_write_commit: dict[Location, int] = field(default_factory=dict)


class _FirstFitScheduler:
    def __init__(self, program: NetworkProgram, c: int, options: ScheduleOptions):
        self.program = program
        self.c = c
        self.bf = Butterfly(c)
        self.latency = self.bf.latency + options.extra_latency
        self.options = options
        self.slots: list[_SlotState] = []
        self.bundles: list[list[NetOp]] = []
        self.track = _Tracker()
        self.n_prefetch = 0
        # Scratch addresses for prefetch copies, one cursor per bank,
        # placed in a reserved high region of the register files.
        self._scratch_next = defaultdict(int)
        self._scratch_base = 1 << 22  # disjoint from allocator addresses
        self._next_seq = 0

    # -- helpers -------------------------------------------------------
    def _slot(self, t: int) -> _SlotState:
        while len(self.slots) <= t:
            self.slots.append(_SlotState())
            self.bundles.append([])
        return self.slots[t]

    def _earliest_by_deps(self, op: NetOp) -> int:
        """First cycle all data dependencies allow issuing ``op``."""
        t = 0
        for loc in op.all_read_locations():
            t = max(t, self.track.ready.get(loc, 0))
        # Write-side ordering: this op's commits must land strictly
        # after previous commits and after previous reads of the same
        # location (WAW / WAR).
        dur = op_duration(op)
        commit_off = dur - 1 + self.latency
        for loc in op.all_write_locations():
            floor = max(
                self.track.last_write_commit.get(loc, -1),
                self.track.last_read.get(loc, -1),
            )
            t = max(t, floor + 1 - commit_off)
        return t

    def _fits(self, op: NetOp, t: int) -> tuple[bool, bool]:
        """``(fits, read_contention)`` at slot ``t``.

        ``read_contention`` flags a read-port clash with already-placed
        instructions — the conflict class data prefetching can break
        (moving the operand also moves its multiplier lane, so an
        accompanying node conflict is usually resolved by the same
        copy).
        """
        occ = op_occupancy(op, self.bf)
        reads_per_cycle, writes_per_cycle = _op_port_usage(op)
        dur = op_duration(op)
        ok = True
        read_block = False
        for off in range(dur):
            slot = self._slot(t + off)
            if occ & slot.occ:
                ok = False
            if writes_per_cycle[off] & slot.write_banks:
                ok = False
            if reads_per_cycle[off] & slot.read_banks:
                ok = False
                read_block = True
        if op.kind is OpKind.SCALAR and self._slot(t).scalars >= SCALAR_UNITS:
            ok = False
        return ok, read_block

    def _place(self, op: NetOp, t: int) -> None:
        op._seq = self._next_seq  # program order, consumed by the simulator
        self._next_seq += 1
        occ = op_occupancy(op, self.bf)
        reads_per_cycle, writes_per_cycle = _op_port_usage(op)
        dur = op_duration(op)
        for off in range(dur):
            slot = self._slot(t + off)
            slot.occ |= occ
            slot.read_banks |= reads_per_cycle[off]
            slot.write_banks |= writes_per_cycle[off]
        if op.kind is OpKind.SCALAR:
            self._slot(t).scalars += 1
        self.bundles[t].append(op)
        commit = t + dur - 1 + self.latency
        for loc in op.all_read_locations():
            self.track.last_read[loc] = max(
                self.track.last_read.get(loc, -1), t + dur - 1
            )
        for loc in op.all_write_locations():
            self.track.ready[loc] = max(self.track.ready.get(loc, 0), commit + 1)
            self.track.last_write_commit[loc] = max(
                self.track.last_write_commit.get(loc, -1), commit
            )

    # -- prefetching ---------------------------------------------------
    def _try_prefetch(self, op: NetOp, t_blocked: int) -> bool:
        """Break a read-port conflict by copying one operand early.

        Finds a blocked read bank, a free earlier slot, and an idle
        destination bank; inserts a single-flow PERMUTE copy and
        rewrites the instruction to read the copy (Section IV-A).
        """
        if self.n_prefetch >= self.options.max_prefetch:
            return False
        if op.kind not in (OpKind.MAC, OpKind.COLELIM):
            return False
        slot = self._slot(t_blocked)
        for ri, loc in enumerate(op.reads):
            if loc.space != "rf" or loc.bank not in slot.read_banks:
                continue
            # The copy must commit before the blocked issue cycle.
            t_copy_max = t_blocked - self.latency - 1
            if t_copy_max < self.track.ready.get(loc, 0):
                continue
            # Never collide with the op's own operand banks, nor with
            # reads already placed in the blocked slot.
            own_banks = {l.bank for l in op.rf_reads()}
            forbidden = {loc.bank} | slot.read_banks | own_banks
            for t_copy in range(self.track.ready.get(loc, 0), t_copy_max + 1):
                cslot = self._slot(t_copy)
                if loc.bank in cslot.read_banks:
                    continue
                for dst_bank in range(self.c):
                    if dst_bank in forbidden or dst_bank in cslot.write_banks:
                        continue
                    copy_occ = self.bf.occupancy_permute([(loc.bank, dst_bank)])
                    if copy_occ & cslot.occ:
                        continue
                    dst_loc = Location(
                        "rf",
                        dst_bank,
                        self._scratch_base + self._scratch_next[dst_bank],
                    )
                    self._scratch_next[dst_bank] += 1
                    copy = NetOp(
                        kind=OpKind.PERMUTE,
                        reads=[loc],
                        writes=[(dst_loc, False)],
                        src_lanes=[loc.bank],
                        dst_lanes=[dst_bank],
                        tag=f"prefetch:{op.tag or op.kind.value}",
                    )
                    self._place(copy, t_copy)
                    self.n_prefetch += 1
                    # Rewrite the blocked operand (and its lane).
                    op.reads[ri] = dst_loc
                    for li, lane in enumerate(op.src_lanes):
                        if lane == loc.bank:
                            op.src_lanes[li] = dst_bank
                            break
                    op._occ = None  # invalidate the occupancy cache
                    return True
        return False

    # -- priorities ----------------------------------------------------
    def _critical_path_order(self) -> list[NetOp]:
        """Reorder ops by descending dependency height (list scheduling).

        The height of an op is the length of the longest chain of
        dependent ops below it; issuing tall chains first keeps the
        pipeline busy while short independent work fills the gaps.
        Ties break by program order, which also keeps the order a valid
        topological order of the dependency graph.
        """
        ops = self.program.ops
        n = len(ops)
        # Build RAW/WAW/WAR successor lists via location tracking.
        successors: list[list[int]] = [[] for _ in range(n)]
        last_writer: dict[Location, int] = {}
        readers: dict[Location, list[int]] = {}
        for i, op in enumerate(ops):
            for loc in op.all_read_locations():
                if loc in last_writer:
                    successors[last_writer[loc]].append(i)
                readers.setdefault(loc, []).append(i)
            for loc in op.all_write_locations():
                if loc in last_writer:
                    successors[last_writer[loc]].append(i)
                for r in readers.get(loc, ()):
                    if r != i:
                        successors[r].append(i)
                readers[loc] = []
                last_writer[loc] = i
        height = [0] * n
        for i in range(n - 1, -1, -1):
            h = 0
            for s in successors[i]:
                h = max(h, height[s] + 1)
            height[i] = h
        order = sorted(range(n), key=lambda i: (-height[i], i))
        # Re-sorting must stay topological: an op's dependencies all
        # have strictly greater height, so they sort earlier.
        return [ops[i] for i in order]

    # -- main loops ----------------------------------------------------
    def run_multi_issue(self) -> Schedule:
        if self.options.priority == "critical_path":
            op_order = self._critical_path_order()
        elif self.options.priority == "program":
            op_order = self.program.ops
        else:
            raise ValueError(f"unknown priority {self.options.priority!r}")
        for op in op_order:
            t0 = self._earliest_by_deps(op)
            t = t0
            first_read_block: int | None = None
            while True:
                fits, read_block = self._fits(op, t)
                if fits:
                    break
                if read_block and first_read_block is None:
                    first_read_block = t
                t += 1
                if t - t0 > self.options.window:
                    raise RuntimeError(
                        f"scheduler window exceeded for {op.tag or op.kind}"
                    )
            if (
                self.options.prefetch
                and first_read_block is not None
                and t > first_read_block
                and self._try_prefetch(op, first_read_block)
            ):
                # Retry from the originally blocked slot with the
                # rewritten operand.
                t = first_read_block
                while True:
                    fits, _ = self._fits(op, t)
                    if fits:
                        break
                    t += 1
            self._place(op, t)
        return self._finish()

    def run_dynamic(self, window: int) -> Schedule:
        """Scoreboard-style dynamic issue with a bounded window.

        Models the hardware the paper leaves to future work: each
        cycle, the issue logic scans the oldest ``window`` un-issued
        instructions in order and dispatches every one whose operands
        have committed and whose resources are free *this* cycle.
        Unlike the static scheduler it cannot look arbitrarily far
        ahead, so a long dependency stall at the window head blocks
        younger independent work once the window is exhausted.
        """
        remaining = list(self.program.ops)
        issued = [False] * len(remaining)
        head = 0
        t = 0
        total = len(remaining)
        n_issued = 0
        while n_issued < total:
            # The window is the oldest `window` un-issued instructions.
            # Scoreboard rule: an instruction may only issue past older
            # *un-issued* instructions if it carries no dependence on
            # them — their queued writes block its reads (RAW) and
            # writes (WAW), and their queued reads block its writes
            # (WAR).
            stalled_writes: set[Location] = set()
            stalled_reads: set[Location] = set()
            count = 0
            i = head
            while i < total and count < window:
                if not issued[i]:
                    count += 1
                    op = remaining[i]
                    ok = self._earliest_by_deps(op) <= t
                    if ok:
                        reads = op.all_read_locations()
                        writes = op.all_write_locations()
                        ok = (
                            not any(l in stalled_writes for l in reads)
                            and not any(l in stalled_writes for l in writes)
                            and not any(l in stalled_reads for l in writes)
                        )
                    if ok:
                        fits, _ = self._fits(op, t)
                        ok = fits
                    if ok:
                        self._place(op, t)
                        issued[i] = True
                        n_issued += 1
                    else:
                        stalled_writes.update(op.all_write_locations())
                        stalled_reads.update(op.all_read_locations())
                i += 1
            while head < total and issued[head]:
                head += 1
            t += 1
            if t > len(self.slots) + self.latency + self.options.window:
                raise RuntimeError("dynamic scheduler made no progress")
        return self._finish()

    def run_single_issue(self) -> Schedule:
        next_free = 0
        for op in self.program.ops:
            t = max(next_free, self._earliest_by_deps(op))
            self._place(op, t)
            next_free = t + op_duration(op)
        return self._finish()

    def _finish(self) -> Schedule:
        # Trim trailing empty slots.
        last = max(
            (t for t, b in enumerate(self.bundles) if b), default=-1
        )
        return Schedule(
            name=self.program.name,
            c=self.c,
            slots=self.bundles[: last + 1],
            n_ops=len(self.program.ops) + self.n_prefetch,
            n_prefetch=self.n_prefetch,
            extra_latency=self.options.extra_latency,
        )


def validate_schedule(schedule: Schedule) -> None:
    """Statically re-check a schedule's structural constraints.

    Intended for executables loaded from disk (a corrupted or
    hand-edited file must fail here, not mid-solve): verifies node
    occupancy disjointness, register-file port limits, scalar-unit
    capacity and double-pump holds for every slot.  Data hazards are
    execution-time properties and remain the simulator's job.
    Raises ``ValueError`` on the first violation.
    """
    bf = Butterfly(schedule.c)
    held_reads: dict[int, set[int]] = defaultdict(set)
    held_writes: dict[int, set[int]] = defaultdict(set)
    held_occ: dict[int, int] = defaultdict(int)
    for t, bundle in enumerate(schedule.slots):
        reads = set(held_reads.pop(t, set()))
        writes = set(held_writes.pop(t, set()))
        occ = held_occ.pop(t, 0)
        scalars = 0
        for op in bundle:
            op_occ = op_occupancy(op, bf)
            if op_occ & occ:
                raise ValueError(f"node conflict in slot {t}: {op.tag}")
            occ |= op_occ
            if op.kind is OpKind.SCALAR:
                scalars += 1
                if scalars > SCALAR_UNITS:
                    raise ValueError(f"scalar units oversubscribed in slot {t}")
            reads_pc, writes_pc = _op_port_usage(op)
            dur = op_duration(op)
            for off in range(dur):
                r_set = reads if off == 0 else held_reads[t + off]
                w_set = writes if off == 0 else held_writes[t + off]
                if reads_pc[off] & r_set:
                    raise ValueError(f"read-port conflict in slot {t + off}: {op.tag}")
                if writes_pc[off] & w_set:
                    raise ValueError(
                        f"write-port conflict in slot {t + off}: {op.tag}"
                    )
                r_set |= reads_pc[off]
                w_set |= writes_pc[off]
                if off > 0:
                    held_occ[t + off] |= op_occ


def schedule_program(
    program: NetworkProgram,
    c: int,
    options: ScheduleOptions | None = None,
) -> Schedule:
    """Schedule a lowered program for a width-``C`` network."""
    options = options or ScheduleOptions()
    sched = _FirstFitScheduler(program, c, options)
    if options.mode == "dynamic":
        return sched.run_dynamic(options.dynamic_window)
    if options.mode != "static":
        raise ValueError(f"unknown scheduling mode {options.mode!r}")
    if options.multi_issue:
        return sched.run_multi_issue()
    return sched.run_single_issue()
