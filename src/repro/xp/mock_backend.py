"""A simulated device backend for CPU-only test coverage.

``MockDeviceBackend`` stores everything in numpy but presents itself
as a *device* backend (``is_host = False``): conversions copy (so a
"device" buffer is never the same object as its host source — the
scratch-isolation tests rely on that), duplicate-index commits run
through the precompiled :class:`~repro.xp.plans.ReducePlan` fallback
instead of ``np.add.at``, and crossing accounting follows the
device-transfer model.

Because the reduce plan reproduces the ``np.add.at`` left fold
exactly, every solve through this backend must stay bit-identical to
the numpy path — which is precisely what makes it useful: the torch
and cupy code paths (prepared phases, plan scatters, backend-keyed
scratch, transfer crossings) get exercised in CI on a box with no
accelerator installed, with bitwise assertions intact.
"""

from __future__ import annotations

import numpy as np

from .base import ArrayBackend
from .plans import ReducePlan, compile_reduce_plan

__all__ = ["MockDeviceBackend"]


class MockDeviceBackend(ArrayBackend):
    name = "mock"
    is_host = False

    def from_host(self, a):
        return np.array(a, dtype=np.float64)  # simulate the upload copy

    def to_host(self, a, copy: bool = False):
        return a.copy() if copy else a

    def copy_values(self, a):
        return np.array(a, dtype=np.float64)

    def _index_convert(self, a):
        return np.array(a, dtype=np.int64)

    def zeros(self, shape):
        return np.zeros(shape, dtype=np.float64)

    def empty(self, shape):
        return np.empty(shape, dtype=np.float64)

    def tile(self, template, b: int):
        return np.tile(template, (b, 1))

    def bincount(self, seg, weights, minlength: int):
        return np.bincount(seg, weights=weights, minlength=minlength)

    def prepare_add_at_index(self, sids):
        return self._plan_memo.get(sids, compile_reduce_plan)

    def _plan_of(self, idx) -> ReducePlan:
        if isinstance(idx, ReducePlan):
            return idx
        return self._plan_memo.get(idx, compile_reduce_plan)

    def add_at(self, target, idx, vals) -> None:
        self._plan_of(idx).apply(target, vals, self)

    def add_at_batch(self, target, idx, vals) -> None:
        self._plan_of(idx).apply_batch(target, vals, self)

    def minimum(self, a, b):
        return np.minimum(a, b)

    def maximum(self, a, b):
        return np.maximum(a, b)

    def take_rows(self, a, keep):
        return a[keep]
