"""Opt-in torch backend (CPU or CUDA device tensors).

Import-gated: constructing :class:`TorchBackend` raises
:class:`~repro.xp.base.BackendUnavailable` when torch is not
installed, and the policy layer degrades to numpy.  Duplicate-index
commits never use ``index_put_(accumulate=True)`` — on CUDA its
atomics reduce duplicates in nondeterministic order — but execute the
precompiled :class:`~repro.xp.plans.ReducePlan` rounds, whose
unique-index scatters are deterministic, reproducing the CPU left
fold's *ordering* on every device.  MAC segmented sums map to
``torch.bincount``; on CUDA that is atomic-based, so cross-backend
bitwise equality is not guaranteed there (DESIGN.md §5.7).
"""

from __future__ import annotations

from .base import ArrayBackend, BackendUnavailable
from .plans import ReducePlan, compile_reduce_plan

__all__ = ["TorchBackend"]


class TorchBackend(ArrayBackend):
    name = "torch"
    is_host = False

    def __init__(self, device: str | None = None) -> None:
        super().__init__()
        try:
            import torch
        except ImportError as exc:  # pragma: no cover - env dependent
            raise BackendUnavailable(
                "array backend 'torch' requires torch (pip install "
                "'repro[gpu]' or torch)"
            ) from exc
        self.torch = torch
        if device is None:
            device = "cuda" if torch.cuda.is_available() else "cpu"
        self.device = torch.device(device)
        self._f64 = torch.float64
        self._i64 = torch.int64

    def from_host(self, a):
        return self.torch.as_tensor(
            a, dtype=self._f64, device=self.device
        )

    def to_host(self, a, copy: bool = False):
        host = a.detach().cpu().numpy()
        # .numpy() aliases CPU tensor memory; honour the copy request
        # and never hand out an alias of device-backed staging.
        return host.copy() if copy or a.device.type == "cpu" else host

    def copy_values(self, a):
        if isinstance(a, self.torch.Tensor):
            return a.to(dtype=self._f64, device=self.device).clone()
        return self.from_host(a).clone()

    def _index_convert(self, a):
        return self.torch.as_tensor(
            a, dtype=self._i64, device=self.device
        )

    def zeros(self, shape):
        return self.torch.zeros(shape, dtype=self._f64, device=self.device)

    def empty(self, shape):
        return self.torch.empty(shape, dtype=self._f64, device=self.device)

    def tile(self, template, b: int):
        return self.from_host(template).repeat(b, 1)

    def bincount(self, seg, weights, minlength: int):
        return self.torch.bincount(seg, weights=weights, minlength=minlength)

    def prepare_add_at_index(self, sids):
        return self._plan_memo.get(sids, compile_reduce_plan)

    def _plan_of(self, idx) -> ReducePlan:
        if isinstance(idx, ReducePlan):
            return idx
        return self._plan_memo.get(idx, compile_reduce_plan)

    def add_at(self, target, idx, vals) -> None:
        self._plan_of(idx).apply(target, vals, self)

    def add_at_batch(self, target, idx, vals) -> None:
        self._plan_of(idx).apply_batch(target, vals, self)

    def minimum(self, a, b):
        return self.torch.minimum(a, b)

    def maximum(self, a, b):
        return self.torch.maximum(a, b)

    def take_rows(self, a, keep):
        return a[self.torch.as_tensor(keep, device=self.device)]
