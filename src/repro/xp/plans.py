"""Segment-sorted reduce plans: ordered accumulation without add.at.

``np.add.at(state, idx, vals)`` applies duplicate-index contributions
one at a time in stream order — a left fold per target.  That ordering
is what keeps trace replay bit-identical to the sequential
interpreter, and it is exactly what accelerator scatter-adds (torch
``index_put_(accumulate=True)``, cupy ``scatter_add``) do *not*
guarantee: they reduce duplicates in whatever order the hardware
atomics land.

A :class:`ReducePlan` recovers the exact left fold with only
unique-index scatters.  Compiled once per commit run (the duplicate
structure is a property of the trace, not the data):

1. stable-sort the commit stream by target index, so each target's
   contributions appear contiguously *in stream order*;
2. rank every contribution within its target segment (its occurrence
   number r);
3. emit one *round* per rank: round r holds the r-th contribution of
   every target that has one.  Within a round all target indices are
   unique, so ``state[idx_r] += vals[src_r]`` is an ordinary
   deterministic scatter on every backend.

Executing the rounds in rank order applies each target's
contributions strictly in stream order, one addition at a time —
``((s + v0) + v1) + ...`` — which is the ``np.add.at`` left fold,
bit-for-bit, including the IEEE-754 corner cases (±inf producing NaN,
signed-zero results, NaN propagation) where floating-point addition
is not associative.  The one exception is which *payload* survives a
NaN+NaN addition — unspecified by IEEE-754 and genuinely different
between numpy's ufunc-at and fancy-index-add code paths.  The
property test in ``tests/test_arch/test_xp_backends.py`` pins this
equivalence under random duplicate streams and adversarial float64
values (comparing bytes modulo NaN payload).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ReducePlan", "compile_reduce_plan"]


class ReducePlan:
    """Round-decomposed scatter-add schedule for one commit run.

    ``rounds`` is a list of ``(targets, sources)`` host index pairs:
    round r scatters ``vals[sources]`` into ``state[targets]`` where
    ``targets`` are unique.  ``n`` is the commit-stream length and
    ``max_dup`` the deepest duplicate chain (== ``len(rounds)``).
    Backend-converted rounds are memoized per backend name so device
    replay never re-uploads the plan.
    """

    __slots__ = ("rounds", "n", "_backend_rounds")

    def __init__(self, rounds: list[tuple[np.ndarray, np.ndarray]], n: int):
        self.rounds = rounds
        self.n = n
        self._backend_rounds: dict[str, list] = {}

    @property
    def max_dup(self) -> int:
        return len(self.rounds)

    def rounds_for(self, xp) -> list:
        """The rounds with index arrays converted for ``xp``."""
        conv = self._backend_rounds.get(xp.name)
        if conv is None:
            conv = [
                (xp.index(tgt), xp.index(src)) for tgt, src in self.rounds
            ]
            self._backend_rounds[xp.name] = conv
        return conv

    def apply(self, target, vals, xp=None) -> None:
        """``target[idx] += vals`` with exact left-fold ordering.

        With ``xp`` the scatter runs through backend index arrays on
        backend buffers; without, plain numpy (the equivalence oracle
        used by the property tests).
        """
        rounds = self.rounds if xp is None else self.rounds_for(xp)
        for tgt, src in rounds:
            target[tgt] += vals[src]

    def apply_batch(self, target, vals, xp=None) -> None:
        """Batched :meth:`apply` over a leading lane axis."""
        rounds = self.rounds if xp is None else self.rounds_for(xp)
        for tgt, src in rounds:
            target[:, tgt] += vals[:, src]


def compile_reduce_plan(idx: np.ndarray) -> ReducePlan:
    """Compile the round decomposition of one duplicate-index stream."""
    idx = np.asarray(idx, dtype=np.int64)
    if idx.ndim != 1:
        raise ValueError("reduce plan needs a 1-D index stream")
    n = idx.size
    if n == 0:
        return ReducePlan([], 0)
    order = np.argsort(idx, kind="stable")
    sorted_idx = idx[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_idx[1:] != sorted_idx[:-1]
    pos = np.arange(n, dtype=np.int64)
    group_start = np.maximum.accumulate(np.where(new_group, pos, 0))
    rank = pos - group_start
    rounds: list[tuple[np.ndarray, np.ndarray]] = []
    for r in range(int(rank.max()) + 1):
        src = order[rank == r]
        rounds.append((idx[src], src))
    return ReducePlan(rounds, n)
