"""repro.xp — pluggable array backends for the replay executor.

The replay stack executes compiled phase programs against an injected
:class:`~repro.xp.base.ArrayBackend` instead of module-level numpy:

* :data:`NUMPY` — the reference backend, bit-identical to the
  historical numpy execution (the default everywhere);
* ``torch`` / ``cupy`` — opt-in accelerator backends (import-gated),
  selected for large batches by :class:`BackendPolicy`;
* ``strict`` — an array-api-strict wrapper used by CI to catch
  numpy-isms in the phase arithmetic;
* ``mock`` — a numpy-backed simulated device used by the test suite
  to exercise the device code paths (prepared phases, reduce-plan
  commits, transfer-crossing accounting) on CPU-only boxes.

See DESIGN.md §5.7 for the backend selection matrix and the
determinism contract.
"""

from .base import ArrayBackend, BackendUnavailable
from .numpy_backend import NumpyBackend
from .plans import ReducePlan, compile_reduce_plan
from .policy import (
    BACKEND_CHOICES,
    BackendPolicy,
    available_backends,
    get_backend,
)

__all__ = [
    "ArrayBackend",
    "BackendUnavailable",
    "BackendPolicy",
    "BACKEND_CHOICES",
    "NumpyBackend",
    "NUMPY",
    "ReducePlan",
    "available_backends",
    "compile_reduce_plan",
    "get_backend",
]

#: Process-wide numpy reference backend (the default executor).
NUMPY = get_backend("numpy")
