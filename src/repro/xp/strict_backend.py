"""array-api-strict test backend: catches numpy-isms in CI.

``StrictBackend`` runs the replay phase programs with every
*arithmetic* operation routed through the ``array_api_strict``
namespace — the portable subset of array semantics — so accidental
numpy-isms (silent dtype promotion, value-based casting, operator
behaviours outside the standard) fail loudly in the CI strict job
instead of surfacing as device-backend drift later.

Indexing is deliberately *not* routed through the strict namespace:
fancy-index gathers/scatters, ``bincount`` segment sums and ordered
``add_at`` commits are the executor-op set every backend implements
natively (the array API does not standardize them), so this backend
bridges them through numpy and documents them as such.  Arithmetic —
the part the standard does cover — runs on genuine strict arrays.

Arrays are :class:`_StrictArray` wrappers around a numpy mirror; each
arithmetic operator lifts its operands into ``array_api_strict``,
applies the standard operator there (dtype rules and all), and lowers
the result back.  Test-only: the per-op lift/lower round-trip is far
too slow for serving, which is why the policy layer never selects
``strict`` implicitly.
"""

from __future__ import annotations

import numpy as np

from .base import ArrayBackend, BackendUnavailable
from .plans import ReducePlan, compile_reduce_plan

__all__ = ["StrictBackend"]


def _make_array_class(xps):
    """Build the wrapper class bound to one strict namespace."""

    def to_np(x):
        """Lower a strict array to numpy, tolerating API drift."""
        try:
            return np.asarray(x)
        except Exception:
            pass
        try:
            return np.from_dlpack(x)
        except Exception:
            return np.asarray(x._array)  # last resort: internal mirror

    class _StrictArray:
        """numpy-backed array whose arithmetic runs in array-api-strict."""

        __slots__ = ("np",)

        def __init__(self, arr):
            self.np = np.asarray(arr, dtype=np.float64)

        # -- shape protocol -------------------------------------------
        @property
        def shape(self):
            return self.np.shape

        @property
        def ndim(self):
            return self.np.ndim

        def ravel(self):
            return _StrictArray(self.np.ravel())

        def reshape(self, *shape):
            return _StrictArray(self.np.reshape(*shape))

        def copy(self):
            return _StrictArray(self.np.copy())

        def __float__(self):
            return float(self.np)

        # -- bridged executor indexing --------------------------------
        def __getitem__(self, idx):
            out = self.np[idx]
            return _StrictArray(out) if isinstance(out, np.ndarray) else out

        def __setitem__(self, idx, value):
            self.np[idx] = value.np if isinstance(value, _StrictArray) else value

        # -- strict-namespace arithmetic ------------------------------
        @staticmethod
        def _lift(other):
            if isinstance(other, _StrictArray):
                return xps.asarray(other.np)
            if isinstance(other, np.ndarray):
                return xps.asarray(other)
            return other  # python scalar: standard operator promotion

        def _binop(self, other, op, reflected=False):
            a = xps.asarray(self.np)
            b = self._lift(other)
            return _StrictArray(to_np(op(b, a) if reflected else op(a, b)))

        def __add__(self, o):
            return self._binop(o, lambda a, b: a + b)

        def __radd__(self, o):
            return self._binop(o, lambda a, b: a + b, reflected=True)

        def __sub__(self, o):
            return self._binop(o, lambda a, b: a - b)

        def __rsub__(self, o):
            return self._binop(o, lambda a, b: a - b, reflected=True)

        def __mul__(self, o):
            return self._binop(o, lambda a, b: a * b)

        def __rmul__(self, o):
            return self._binop(o, lambda a, b: a * b, reflected=True)

        def __truediv__(self, o):
            return self._binop(o, lambda a, b: a / b)

        def __rtruediv__(self, o):
            return self._binop(o, lambda a, b: a / b, reflected=True)

        def __neg__(self):
            return _StrictArray(to_np(-xps.asarray(self.np)))

        def __iadd__(self, o):
            return self.__add__(o)

        def __repr__(self):  # pragma: no cover - debugging aid
            return f"_StrictArray({self.np!r})"

    return _StrictArray


class StrictBackend(ArrayBackend):
    name = "strict"
    is_host = False  # wrappers are not plain ndarrays: keep them distinct

    def __init__(self) -> None:
        super().__init__()
        try:
            import array_api_strict as xps
        except ImportError as exc:  # pragma: no cover - env dependent
            raise BackendUnavailable(
                "array backend 'strict' requires array-api-strict "
                "(CI-only: pip install array-api-strict)"
            ) from exc
        self.xps = xps
        self.Array = _make_array_class(xps)

    # -- conversion ----------------------------------------------------
    def from_host(self, a):
        return self.Array(np.array(a, dtype=np.float64))

    def to_host(self, a, copy: bool = False):
        arr = a.np if isinstance(a, self.Array) else np.asarray(a)
        return arr.copy() if copy else arr

    def copy_values(self, a):
        return self.from_host(a.np if isinstance(a, self.Array) else a)

    def _index_convert(self, a):
        return a  # indexing bridges through numpy (see module docstring)

    def zeros(self, shape):
        return self.Array(np.zeros(shape, dtype=np.float64))

    def empty(self, shape):
        return self.Array(np.empty(shape, dtype=np.float64))

    def tile(self, template, b: int):
        return self.Array(np.tile(template, (b, 1)))

    # -- executor ops (numpy-bridged; see module docstring) ------------
    def bincount(self, seg, weights, minlength: int):
        w = weights.np if isinstance(weights, self.Array) else weights
        return self.Array(np.bincount(seg, weights=w, minlength=minlength))

    def prepare_add_at_index(self, sids):
        return self._plan_memo.get(sids, compile_reduce_plan)

    def _plan_of(self, idx) -> ReducePlan:
        if isinstance(idx, ReducePlan):
            return idx
        return self._plan_memo.get(idx, compile_reduce_plan)

    def add_at(self, target, idx, vals) -> None:
        # Plan rounds scatter through the wrapper, so the per-round
        # addition itself still runs in the strict namespace.
        self._plan_of(idx).apply(target, vals, self)

    def add_at_batch(self, target, idx, vals) -> None:
        self._plan_of(idx).apply_batch(target, vals, self)

    def minimum(self, a, b):
        return self._min_max(a, b, "minimum", np.minimum)

    def maximum(self, a, b):
        return self._min_max(a, b, "maximum", np.maximum)

    def _min_max(self, a, b, name: str, np_fn):
        fn = getattr(self.xps, name, None)
        an = a.np if isinstance(a, self.Array) else a
        bn = b.np if isinstance(b, self.Array) else b
        if fn is None:  # pre-2023.12 strict namespace
            return self.Array(np_fn(an, bn))
        out = fn(self.xps.asarray(an), self.xps.asarray(bn))
        return self.from_host(self.to_host_strict(out))

    def to_host_strict(self, x):
        try:
            return np.asarray(x)
        except Exception:
            pass
        try:
            return np.from_dlpack(x)
        except Exception:
            return np.asarray(x._array)

    def take_rows(self, a, keep):
        return self.Array(a.np[keep])
