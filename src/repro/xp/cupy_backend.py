"""Opt-in cupy backend (CUDA device arrays via the numpy-like API).

Import-gated like torch.  cupy mirrors the numpy API closely enough
that the phase programs run unchanged on device arrays; the two
ordering-sensitive ops are replaced: MAC segmented sums use
``cupy.bincount`` (atomic on device — no cross-backend bit guarantee,
DESIGN.md §5.7) and duplicate-index commits run the
:class:`~repro.xp.plans.ReducePlan` rounds rather than
``cupyx.scatter_add``, whose atomics reduce in arrival order.
"""

from __future__ import annotations

from .base import ArrayBackend, BackendUnavailable
from .plans import ReducePlan, compile_reduce_plan

__all__ = ["CupyBackend"]


class CupyBackend(ArrayBackend):
    name = "cupy"
    is_host = False

    def __init__(self) -> None:
        super().__init__()
        try:
            import cupy
        except ImportError as exc:  # pragma: no cover - env dependent
            raise BackendUnavailable(
                "array backend 'cupy' requires cupy (pip install "
                "'repro[gpu]' or cupy-cuda12x)"
            ) from exc
        self.cupy = cupy

    def from_host(self, a):
        return self.cupy.asarray(a, dtype=self.cupy.float64)

    def to_host(self, a, copy: bool = False):
        return self.cupy.asnumpy(a)  # always a fresh host buffer

    def copy_values(self, a):
        return self.cupy.array(a, dtype=self.cupy.float64)

    def _index_convert(self, a):
        return self.cupy.asarray(a, dtype=self.cupy.int64)

    def zeros(self, shape):
        return self.cupy.zeros(shape, dtype=self.cupy.float64)

    def empty(self, shape):
        return self.cupy.empty(shape, dtype=self.cupy.float64)

    def tile(self, template, b: int):
        return self.cupy.tile(self.from_host(template), (b, 1))

    def bincount(self, seg, weights, minlength: int):
        return self.cupy.bincount(seg, weights=weights, minlength=minlength)

    def prepare_add_at_index(self, sids):
        return self._plan_memo.get(sids, compile_reduce_plan)

    def _plan_of(self, idx) -> ReducePlan:
        if isinstance(idx, ReducePlan):
            return idx
        return self._plan_memo.get(idx, compile_reduce_plan)

    def add_at(self, target, idx, vals) -> None:
        self._plan_of(idx).apply(target, vals, self)

    def add_at_batch(self, target, idx, vals) -> None:
        self._plan_of(idx).apply_batch(target, vals, self)

    def minimum(self, a, b):
        return self.cupy.minimum(a, b)

    def maximum(self, a, b):
        return self.cupy.maximum(a, b)

    def take_rows(self, a, keep):
        return a[self.cupy.asarray(keep)]
