"""Backend registry and batch-size-driven selection policy.

``get_backend(name)`` returns the process-wide singleton for a
backend (constructing it lazily; accelerator backends raise
:class:`~repro.xp.base.BackendUnavailable` when their runtime is not
importable).  :class:`BackendPolicy` is the selection rule the solver
and the serve pool share, resolved once from the ``--array-backend``
CLI spelling:

* ``numpy`` / ``torch`` / ``cupy`` — force that backend everywhere
  (forcing an unimportable accelerator raises immediately, at
  configuration time, not mid-solve);
* ``auto`` (the default) — numpy for sequential solves and small
  batches, the best available accelerator at and above
  ``batch_threshold`` lanes (where the per-pass transfer cost
  amortizes), numpy everywhere when no accelerator is importable.
  On a CPU-only box ``auto`` is therefore exactly the numpy path,
  bit for bit.
"""

from __future__ import annotations

from .base import ArrayBackend, BackendUnavailable
from .numpy_backend import NumpyBackend

__all__ = [
    "BackendPolicy",
    "available_backends",
    "get_backend",
    "BACKEND_CHOICES",
]

# CLI-selectable spellings (strict/mock are test backends, selectable
# programmatically and via tests but not advertised on the CLI).
BACKEND_CHOICES = ("auto", "numpy", "torch", "cupy")

# Accelerators in preference order for "auto".
_ACCELERATORS = ("cupy", "torch")

_instances: dict[str, ArrayBackend] = {}


def _construct(name: str) -> ArrayBackend:
    if name == "numpy":
        return NumpyBackend()
    if name == "torch":
        from .torch_backend import TorchBackend

        return TorchBackend()
    if name == "cupy":
        from .cupy_backend import CupyBackend

        return CupyBackend()
    if name == "strict":
        from .strict_backend import StrictBackend

        return StrictBackend()
    if name == "mock":
        from .mock_backend import MockDeviceBackend

        return MockDeviceBackend()
    raise ValueError(
        f"unknown array backend {name!r} "
        f"(expected one of numpy, torch, cupy, strict, mock)"
    )


def get_backend(name: str) -> ArrayBackend:
    """The singleton backend instance for ``name`` (lazy, memoized).

    Raises :class:`BackendUnavailable` when the backend's runtime is
    not importable and :class:`ValueError` for unknown names.
    """
    backend = _instances.get(name)
    if backend is None:
        backend = _construct(name)
        _instances[name] = backend
    return backend


def available_backends() -> list[str]:
    """Names of backends whose runtime imports in this process."""
    out = ["numpy"]
    for name in ("torch", "cupy", "strict", "mock"):
        try:
            get_backend(name)
        except (BackendUnavailable, Exception):
            continue
        out.append(name)
    return out


class BackendPolicy:
    """Resolved backend selection for one solver/pool configuration.

    ``mode`` is a CLI spelling (``auto``/``numpy``/``torch``/``cupy``,
    plus ``strict``/``mock`` for tests).  ``batch_threshold`` is the
    smallest lane count at which ``auto`` prefers an accelerator; the
    default 64 sits where the BENCH_batch sweep shows per-pass overhead
    amortized (see EXPERIMENTS.md).
    """

    DEFAULT_BATCH_THRESHOLD = 64

    def __init__(
        self, mode: str = "auto", *, batch_threshold: int | None = None
    ) -> None:
        self.mode = mode
        self.batch_threshold = (
            self.DEFAULT_BATCH_THRESHOLD
            if batch_threshold is None
            else int(batch_threshold)
        )
        self._numpy = get_backend("numpy")
        if mode == "auto":
            self._forced = None
            self._accelerator = None
            for name in _ACCELERATORS:
                try:
                    self._accelerator = get_backend(name)
                    break
                except (BackendUnavailable, Exception):
                    continue
        else:
            # Forcing resolves (and therefore import-checks) eagerly:
            # a missing runtime fails at configuration time.
            self._forced = get_backend(mode)
            self._accelerator = self._forced if not self._forced.is_host else None

    @classmethod
    def resolve(cls, spec) -> "BackendPolicy":
        """Coerce a CLI string / backend / policy into a policy."""
        if isinstance(spec, BackendPolicy):
            return spec
        if isinstance(spec, ArrayBackend):
            policy = cls.__new__(cls)
            policy.mode = spec.name
            policy.batch_threshold = cls.DEFAULT_BATCH_THRESHOLD
            policy._numpy = get_backend("numpy")
            policy._forced = spec
            policy._accelerator = spec if not spec.is_host else None
            return policy
        return cls(str(spec))

    # ------------------------------------------------------------------
    def sequential(self) -> ArrayBackend:
        """Backend for sequential (single-instance) solves.

        ``auto`` always answers numpy here: a solo solve syncs the
        simulator image around every kernel, so device execution pays
        transfers it can never amortize.
        """
        return self._forced if self._forced is not None else self._numpy

    def for_batch(self, b: int) -> ArrayBackend:
        """Backend for a ``b``-lane batched pass."""
        if self._forced is not None:
            return self._forced
        if self._accelerator is not None and b >= self.batch_threshold:
            return self._accelerator
        return self._numpy

    def describe(self) -> str:
        """Human/metrics-facing summary of the active selection."""
        if self._forced is not None:
            return self._forced.name
        if self._accelerator is None:
            return "auto(numpy)"
        return (
            f"auto(numpy<{self.batch_threshold}"
            f"<={self._accelerator.name})"
        )
