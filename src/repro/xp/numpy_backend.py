"""The numpy reference backend: the bit-exactness oracle.

Every operation is the literal numpy call the replay stack used before
the backend abstraction existed — ``np.bincount`` left-fold segment
sums, unbuffered ``np.add.at`` commits, identity conversions — so
replaying through this backend is byte-for-byte the historical
execution.  All other backends are measured against it.
"""

from __future__ import annotations

import numpy as np

from .base import ArrayBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    name = "numpy"
    is_host = True

    # Conversions are identities: host arrays *are* backend arrays.
    def from_host(self, a):
        return a

    def to_host(self, a, copy: bool = False):
        return a.copy() if copy else a

    def copy_values(self, a):
        return np.array(a, dtype=np.float64)

    def index(self, a):
        return a

    def constant(self, a):
        return a

    def _index_convert(self, a):  # pragma: no cover - index() shortcuts
        return a

    def zeros(self, shape):
        return np.zeros(shape, dtype=np.float64)

    def empty(self, shape):
        return np.empty(shape, dtype=np.float64)

    def tile(self, template, b: int):
        return np.tile(template, (b, 1))

    def bincount(self, seg, weights, minlength: int):
        return np.bincount(seg, weights=weights, minlength=minlength)

    def add_at(self, target, idx, vals) -> None:
        np.add.at(target, idx, vals)

    def add_at_batch(self, target, idx, vals) -> None:
        np.add.at(target, (slice(None), idx), vals)

    def minimum(self, a, b):
        return np.minimum(a, b)

    def maximum(self, a, b):
        return np.maximum(a, b)

    def take_rows(self, a, keep):
        return a[keep]
