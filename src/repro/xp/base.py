"""The executor-op contract every array backend implements.

The replay stack (:mod:`repro.arch.trace`, :mod:`repro.arch.batch`,
:mod:`repro.arch.fusion`) is a pure dense-array program: gathers,
element-wise arithmetic, segmented left-fold sums and ordered
scatter-adds over flat ``float64`` buffers.  :class:`ArrayBackend`
names exactly the operations that program needs beyond standard
array-API arithmetic/indexing, so the same phase programs execute
against numpy, torch, cupy, or the array-api-strict test namespace by
injecting a different backend object — never by editing the programs.

Two operations carry ordering semantics the array API does not
standardize, and are therefore explicit executor ops:

* :meth:`ArrayBackend.bincount` — the MAC segmented sum.  The numpy
  reference adds weights in input order (a left fold per segment),
  which is what makes replay bit-identical to the sequential
  interpreter.  Device backends map it to their native segment sum;
  on GPUs that is typically atomic-based and carries no ordering
  guarantee (see DESIGN.md §5.7 for the determinism contract).
* :meth:`ArrayBackend.add_at` / :meth:`ArrayBackend.add_at_batch` —
  the ordered duplicate-index commit accumulation.  The numpy
  reference is ``np.add.at`` (unbuffered, stream order).  Backends
  without an unbuffered scatter execute a precompiled
  :class:`~repro.xp.plans.ReducePlan` instead, which reproduces the
  sequential left fold exactly — round by round — on any backend
  whose unique-index scatter is deterministic.

Index arrays and float constants produced at trace-compile time live
on the host; :meth:`index` and :meth:`constant` convert (and, on
device backends, memoize) them so steady-state replay never re-uploads
a plan.  ``is_host`` distinguishes the crossing-accounting model: a
host backend charges one host→backend crossing per call dispatch, a
device backend charges only genuine host→device transfers (stream
binds, gathers, scatters) because on-device kernel launches are
asynchronous.
"""

from __future__ import annotations

import weakref

__all__ = ["ArrayBackend", "BackendUnavailable"]


class BackendUnavailable(RuntimeError):
    """The requested backend's runtime is not importable."""


class _IdMemo:
    """Identity-keyed conversion cache with weakref lifetime.

    Compiled traces hold their index/constant arrays for their whole
    life; converting them per replay would dominate device dispatch.
    Keying by ``id`` with a weakref guard gives O(1) steady-state
    lookups without pinning evicted traces' arrays in device memory.
    """

    __slots__ = ("_map",)

    def __init__(self) -> None:
        self._map: dict[int, tuple] = {}

    def get(self, host_arr, convert):
        key = id(host_arr)
        hit = self._map.get(key)
        if hit is not None:
            ref, converted = hit
            if ref() is host_arr:
                return converted
        converted = convert(host_arr)
        try:
            ref = weakref.ref(host_arr)
        except TypeError:  # non-weakrefable constants (plan objects)
            ref = lambda _obj=host_arr: _obj  # noqa: E731
        self._map[key] = (ref, converted)
        if len(self._map) > 4096:
            self._map = {
                k: v for k, v in self._map.items() if v[0]() is not None
            }
        return converted


class ArrayBackend:
    """Abstract executor backend (see module docstring).

    Subclasses set ``name`` (the ``--array-backend`` spelling) and
    ``is_host`` and implement the conversion + executor ops.  All
    float buffers are float64; all index buffers are int64.
    """

    name = "abstract"
    is_host = False

    def __init__(self) -> None:
        self._index_memo = _IdMemo()
        self._const_memo = _IdMemo()
        self._plan_memo = _IdMemo()

    # -- conversion / movement -----------------------------------------
    def from_host(self, a):
        """Host float64 array -> backend array (no copy when host)."""
        raise NotImplementedError

    def to_host(self, a, copy: bool = False):
        """Backend array -> host numpy array (``copy`` forces one)."""
        raise NotImplementedError

    def copy_values(self, a):
        """A backend-resident copy of ``a`` (host or backend input)."""
        raise NotImplementedError

    def index(self, a):
        """Host int64 index array -> backend index array (memoized)."""
        return self._index_memo.get(a, self._index_convert)

    def constant(self, a):
        """Host float64 constant array -> backend array (memoized)."""
        return self._const_memo.get(a, self.from_host)

    def _index_convert(self, a):
        raise NotImplementedError

    # -- buffer constructors -------------------------------------------
    def zeros(self, shape):
        raise NotImplementedError

    def empty(self, shape):
        raise NotImplementedError

    def tile(self, template, b: int):
        """Host 1-D template -> backend ``(b, len)`` repetition."""
        raise NotImplementedError

    # -- executor ops ---------------------------------------------------
    def bincount(self, seg, weights, minlength: int):
        """Segmented sum ``out[j] = Σ weights[seg == j]``.

        The numpy reference folds left in input order; device backends
        use their native (possibly unordered) segment sum.
        """
        raise NotImplementedError

    def prepare_add_at_index(self, sids):
        """The object :meth:`add_at` scatters through for a
        duplicate-target commit run: the host index array itself on a
        host backend, a precompiled :class:`~repro.xp.plans.ReducePlan`
        elsewhere."""
        return sids

    def add_at(self, target, idx, vals) -> None:
        """Ordered duplicate-index accumulate: ``np.add.at`` left-fold
        semantics.  ``idx`` is what :meth:`prepare_add_at_index`
        returned (index array or plan)."""
        raise NotImplementedError

    def add_at_batch(self, target, idx, vals) -> None:
        """Batched :meth:`add_at` over ``target[:, idx] += vals``
        with the same per-lane left-fold ordering."""
        raise NotImplementedError

    def minimum(self, a, b):
        raise NotImplementedError

    def maximum(self, a, b):
        raise NotImplementedError

    def take_rows(self, a, keep):
        """Row subset ``a[keep]`` for a host boolean lane mask."""
        raise NotImplementedError

    # -- crossing accounting -------------------------------------------
    def phase_crossings(self, phases) -> int:
        """Host→backend crossings of one pass over a phase list.

        Host backends charge one crossing per call dispatch (the
        historical numpy accounting); device backends charge zero —
        phase execution is resident, only binds/gathers/scatters move
        data across the PCIe boundary (counted by the replay entry
        points, not here).
        """
        if self.is_host:
            from ..arch.trace import phase_crossings

            return phase_crossings(phases)
        return 0

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ArrayBackend {self.name}>"
