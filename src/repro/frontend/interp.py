"""Reference interpreter for compiled top-level programs.

Executes the Table I instruction stream against numpy state: vectors
and scalars live in a registry, ``load_vec``/``write_vec`` move data
between the HBM-buffer dict and the register-file-resident vectors, and
``net_compute`` dispatches to *bound network schedules* — callables the
embedder supplies per sparsity pattern (the compiled top-level program
itself never changes across domains).

Doubles as the semantic oracle for the MIB's execution of the same
program and as the engine behind the Listing 1 end-to-end test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..arch.isa import TopInstruction, TopOpcode
from .compile import CompiledProgram, HostOp, Loop

__all__ = ["ProgramRuntime", "ExecutionError"]


class ExecutionError(RuntimeError):
    """Raised when a program references unbound state."""


@dataclass
class ProgramRuntime:
    """Mutable execution state for one compiled program."""

    program: CompiledProgram
    vectors: dict[str, np.ndarray] = field(default_factory=dict)
    scalars: dict[str, float] = field(default_factory=dict)
    hbm: dict[str, np.ndarray] = field(default_factory=dict)
    schedules: dict[str, Callable[["ProgramRuntime"], None]] = field(
        default_factory=dict
    )
    executed: int = 0

    # -- binding ---------------------------------------------------------
    def bind_schedule(
        self, name: str, fn: Callable[["ProgramRuntime"], None]
    ) -> None:
        if name not in self.program.schedules:
            raise ExecutionError(f"{name!r} is not a declared net_schedule")
        self.schedules[name] = fn

    def bind_hbm(self, name: str, values: np.ndarray) -> None:
        self.hbm[name] = np.asarray(values, dtype=np.float64).copy()

    def set_scalar(self, name: str, value: float) -> None:
        if name not in self.program.scalars:
            raise ExecutionError(f"{name!r} is not a declared scalar")
        self.scalars[name] = float(value)

    # -- evaluation helpers -----------------------------------------------
    def _vector(self, name: str) -> np.ndarray:
        if name not in self.vectors:
            raise ExecutionError(f"vector {name!r} not loaded")
        return self.vectors[name]

    def _scalar_value(self, token: str) -> float:
        if token in self.program.scalars:
            if token not in self.scalars:
                raise ExecutionError(f"scalar {token!r} unset")
            return self.scalars[token]
        return float(token)

    def _coeff(self, sign: float, factors: tuple[str, ...]) -> float:
        value = sign
        for f in factors:
            value *= self._scalar_value(f)
        return value

    # -- execution ---------------------------------------------------------
    def run(self) -> None:
        """Execute the whole program."""
        self._run_body(self.program.instructions)

    def _run_body(self, body) -> None:
        for ins in body:
            if isinstance(ins, Loop):
                for _ in range(ins.count):
                    self._run_body(ins.body)
            elif isinstance(ins, HostOp):
                self._run_host(ins)
            elif isinstance(ins, TopInstruction):
                self._run_top(ins)
            else:  # pragma: no cover - compiler produces nothing else
                raise ExecutionError(f"unknown instruction {ins!r}")

    def _run_host(self, op: HostOp) -> None:
        self.scalars[op.target] = sum(
            self._coeff(sign, factors) for sign, factors in op.terms
        )
        self.executed += 1

    def _run_top(self, ins: TopInstruction) -> None:
        self.executed += 1
        opcode = ins.opcode
        ops = ins.operands
        if opcode is TopOpcode.LOAD_VEC:
            name = ops[0]
            if name not in self.hbm:
                raise ExecutionError(f"HBM buffer {name!r} not bound")
            self.vectors[name] = self.hbm[name].copy()
        elif opcode is TopOpcode.WRITE_VEC:
            self.hbm[ops[0]] = self._vector(ops[0]).copy()
        elif opcode is TopOpcode.NET_COMPUTE:
            name = ops[0]
            if name not in self.schedules:
                raise ExecutionError(f"net_schedule {name!r} not bound")
            self.schedules[name](self)
        elif opcode is TopOpcode.AXPBY:
            target, s0, c0, v0, s1, c1, v1 = ops
            a = self._coeff(float(s0), c0)
            b = self._coeff(float(s1), c1)
            self.vectors[target] = a * self._vector(v0) + b * self._vector(v1)
        elif opcode is TopOpcode.EW_RECI:
            self.vectors[ops[0]] = 1.0 / self._vector(ops[1])
        elif opcode is TopOpcode.EW_PROD:
            self.vectors[ops[0]] = self._vector(ops[1]) * self._vector(ops[2])
        elif opcode is TopOpcode.SELECT_MIN:
            self.vectors[ops[0]] = np.minimum(
                self._vector(ops[1]), self._vector(ops[2])
            )
        elif opcode is TopOpcode.SELECT_MAX:
            self.vectors[ops[0]] = np.maximum(
                self._vector(ops[1]), self._vector(ops[2])
            )
        elif opcode is TopOpcode.COND_SET:
            target = ops[0]
            value = self._scalar_value(ops[1])
            if target in self.vectors:
                self.vectors[target] = np.full_like(self.vectors[target], value)
            else:
                raise ExecutionError(
                    f"cond_set target {target!r} has no known length — "
                    "load it first"
                )
        elif opcode is TopOpcode.NORM_INF:
            target, source = ops
            v = self._vector(source)
            self.scalars[target] = float(np.abs(v).max()) if v.size else 0.0
        else:  # pragma: no cover - exhaustive
            raise ExecutionError(f"unhandled opcode {opcode}")
