"""Pretty-printer for custom-C ASTs (the inverse of the parser).

Used by tooling that rewrites solver programs (and by the round-trip
tests that pin the parser/printer pair).
"""

from __future__ import annotations

from .parser import Assignment, Call, Declaration, Program, Repeat, Term

__all__ = ["to_source"]

_INDENT = "    "


def _term_to_source(term: Term, *, first: bool) -> str:
    body = " * ".join(term.factors)
    if first:
        return body if term.sign >= 0 else f"-{body}"
    return f"+ {body}" if term.sign >= 0 else f"- {body}"


def _statement_to_source(stmt, depth: int) -> list[str]:
    pad = _INDENT * depth
    if isinstance(stmt, Declaration):
        return [f"{pad}{stmt.kind} {', '.join(stmt.names)};"]
    if isinstance(stmt, Call):
        return [f"{pad}{stmt.name}({', '.join(stmt.args)});"]
    if isinstance(stmt, Assignment):
        if stmt.call is not None:
            rhs = f"{stmt.call.name}({', '.join(stmt.call.args)})"
        else:
            assert stmt.terms is not None
            parts = [
                _term_to_source(t, first=(i == 0))
                for i, t in enumerate(stmt.terms)
            ]
            rhs = " ".join(parts)
        return [f"{pad}{stmt.target} = {rhs};"]
    if isinstance(stmt, Repeat):
        lines = [f"{pad}repeat ({stmt.count}) {{"]
        for inner in stmt.body:
            lines.extend(_statement_to_source(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"unknown statement {stmt!r}")


def to_source(program: Program) -> str:
    """Render an AST back to custom-C source."""
    lines = ["void main() {"]
    for stmt in program.statements:
        lines.extend(_statement_to_source(stmt, 1))
    lines.append("}")
    return "\n".join(lines) + "\n"
