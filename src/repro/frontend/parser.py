"""Recursive-descent parser for the custom-C solver format.

Grammar (the subset Listing 1 exercises, plus ``repeat`` loops):

    program     := "void" "main" "(" ")" block
    block       := "{" statement* "}"
    statement   := declaration | assignment | call ";" | repeat
    declaration := ("net_schedule" | "vectorf" | "float") ident ("," ident)* ";"
    assignment  := ident "=" expr ";"
    repeat      := "repeat" "(" NUMBER ")" block
    expr        := term (("+" | "-") term)*           (linear combination)
                 | call                                (e.g. norm_inf(v))
    term        := ["-"] factor ("*" factor)*
    factor      := ident | NUMBER
    call        := ident "(" [args] ")"
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .lexer import Token, tokenize

__all__ = [
    "ParseError",
    "Program",
    "Declaration",
    "Assignment",
    "Call",
    "Repeat",
    "Term",
    "parse",
]


class ParseError(ValueError):
    """Raised on grammatically invalid source."""


@dataclass(frozen=True)
class Term:
    """One additive term of a linear combination: ``sign·coeffs·vars``.

    ``scalars`` are identifier names or numeric literals multiplying at
    most one vector identifier (checked during compilation, when
    declarations are known).
    """

    sign: float
    factors: tuple[str, ...]  # identifiers and number literals, in order


@dataclass(frozen=True)
class Declaration:
    kind: str  # net_schedule | vectorf | float
    names: tuple[str, ...]
    line: int


@dataclass(frozen=True)
class Assignment:
    target: str
    terms: tuple[Term, ...] | None  # linear combination ...
    call: "Call | None"  # ... or a single call (norm_inf etc.)
    line: int


@dataclass(frozen=True)
class Call:
    name: str
    args: tuple[str, ...]
    line: int


@dataclass(frozen=True)
class Repeat:
    count: int
    body: tuple
    line: int


@dataclass
class Program:
    statements: list = field(default_factory=list)


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------
    def peek(self, offset: int = 0) -> Token | None:
        idx = self.pos + offset
        return self.tokens[idx] if idx < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, kind: str) -> Token:
        tok = self.next()
        if tok.kind != kind:
            raise ParseError(
                f"line {tok.line}: expected {kind}, found {tok.text!r}"
            )
        return tok

    # -- grammar -------------------------------------------------------
    def parse_program(self) -> Program:
        self.expect("void")
        self.expect("main")
        self.expect("LPAREN")
        self.expect("RPAREN")
        body = self.parse_block()
        if self.peek() is not None:
            tok = self.peek()
            raise ParseError(f"line {tok.line}: trailing input {tok.text!r}")
        return Program(statements=list(body))

    def parse_block(self) -> tuple:
        self.expect("LBRACE")
        statements = []
        while True:
            tok = self.peek()
            if tok is None:
                raise ParseError("unterminated block")
            if tok.kind == "RBRACE":
                self.next()
                return tuple(statements)
            statements.append(self.parse_statement())

    def parse_statement(self):
        tok = self.peek()
        assert tok is not None
        if tok.kind in ("net_schedule", "vectorf", "float"):
            return self.parse_declaration()
        if tok.kind == "repeat":
            return self.parse_repeat()
        if tok.kind == "IDENT":
            after = self.peek(1)
            if after is not None and after.kind == "ASSIGN":
                return self.parse_assignment()
            if after is not None and after.kind == "LPAREN":
                call = self.parse_call()
                self.expect("SEMI")
                return call
        raise ParseError(f"line {tok.line}: unexpected {tok.text!r}")

    def parse_declaration(self) -> Declaration:
        kind_tok = self.next()
        names = [self.expect("IDENT").text]
        while self.peek() is not None and self.peek().kind == "COMMA":
            self.next()
            names.append(self.expect("IDENT").text)
        self.expect("SEMI")
        return Declaration(
            kind=kind_tok.kind, names=tuple(names), line=kind_tok.line
        )

    def parse_repeat(self) -> Repeat:
        tok = self.expect("repeat")
        self.expect("LPAREN")
        count = self.expect("NUMBER")
        self.expect("RPAREN")
        body = self.parse_block()
        n = int(float(count.text))
        if n < 0:
            raise ParseError(f"line {tok.line}: negative repeat count")
        return Repeat(count=n, body=body, line=tok.line)

    def parse_assignment(self) -> Assignment:
        target = self.expect("IDENT")
        self.expect("ASSIGN")
        # A single call on the RHS (reductions like norm_inf).
        tok = self.peek()
        if (
            tok is not None
            and tok.kind == "IDENT"
            and self.peek(1) is not None
            and self.peek(1).kind == "LPAREN"
        ):
            call = self.parse_call()
            self.expect("SEMI")
            return Assignment(
                target=target.text, terms=None, call=call, line=target.line
            )
        terms = [self.parse_term(first=True)]
        while self.peek() is not None and self.peek().kind in ("PLUS", "MINUS"):
            op = self.next()
            term = self.parse_term(first=False)
            if op.kind == "MINUS":
                term = Term(sign=-term.sign, factors=term.factors)
            terms.append(term)
        self.expect("SEMI")
        return Assignment(
            target=target.text, terms=tuple(terms), call=None, line=target.line
        )

    def parse_term(self, *, first: bool) -> Term:
        sign = 1.0
        while self.peek() is not None and self.peek().kind == "MINUS":
            self.next()
            sign = -sign
        factors = [self.parse_factor()]
        while self.peek() is not None and self.peek().kind == "STAR":
            self.next()
            factors.append(self.parse_factor())
        return Term(sign=sign, factors=tuple(factors))

    def parse_factor(self) -> str:
        tok = self.next()
        if tok.kind in ("IDENT", "NUMBER"):
            return tok.text
        raise ParseError(f"line {tok.line}: expected operand, found {tok.text!r}")

    def parse_call(self) -> Call:
        name = self.expect("IDENT")
        self.expect("LPAREN")
        args: list[str] = []
        if self.peek() is not None and self.peek().kind != "RPAREN":
            args.append(self.expect("IDENT").text)
            while self.peek() is not None and self.peek().kind == "COMMA":
                self.next()
                args.append(self.expect("IDENT").text)
        self.expect("RPAREN")
        return Call(name=name.text, args=tuple(args), line=name.line)


def parse(source: str) -> Program:
    """Parse custom-C source into an AST."""
    return _Parser(tokenize(source)).parse_program()
