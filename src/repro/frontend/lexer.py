"""Tokenizer for the custom-C solver source format (Listing 1).

The paper migrates existing solver C code by expressing the algorithm
in "a custom C format" that compiles to top-level instructions.  The
language is tiny: declarations (``net_schedule``, ``vectorf``,
``float``), assignments whose right-hand sides are linear combinations
of scalars and vectors, intrinsic calls (``load_vec``, ``net_compute``,
``write_vec`` and the element-wise Table I operations), ``repeat``
blocks, and C comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Token", "LexerError", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "void",
    "main",
    "net_schedule",
    "vectorf",
    "float",
    "repeat",
}

_PUNCT = {
    "(": "LPAREN",
    ")": "RPAREN",
    "{": "LBRACE",
    "}": "RBRACE",
    ";": "SEMI",
    ",": "COMMA",
    "=": "ASSIGN",
    "+": "PLUS",
    "-": "MINUS",
    "*": "STAR",
}


class LexerError(ValueError):
    """Raised on malformed source."""


@dataclass(frozen=True)
class Token:
    """One lexical token with its source line (for diagnostics)."""

    kind: str  # IDENT | NUMBER | keyword name | punctuation name
    text: str
    line: int


def tokenize(source: str) -> list[Token]:
    """Turn source text into a token list (comments stripped)."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        # comments
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexerError(f"line {line}: unterminated block comment")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end == -1 else end
            continue
        if ch in _PUNCT:
            yield Token(_PUNCT[ch], ch, line)
            i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (source[j].isdigit() or source[j] == "."):
                if source[j] == ".":
                    if seen_dot:
                        break
                    seen_dot = True
                j += 1
            # exponent part
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and source[k].isdigit():
                    while k < n and source[k].isdigit():
                        k += 1
                    j = k
            yield Token("NUMBER", source[i:j], line)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = text if text in KEYWORDS else "IDENT"
            yield Token(kind, text, line)
            i = j
            continue
        raise LexerError(f"line {line}: unexpected character {ch!r}")
