"""The custom-C solver frontend (Section III-D, Listing 1): lexer,
parser, compiler to Table I instructions, and a reference interpreter."""

from .compile import (
    CompileError,
    CompiledProgram,
    HostOp,
    Loop,
    compile_program,
    compile_source,
)
from .interp import ExecutionError, ProgramRuntime
from .lexer import LexerError, Token, tokenize
from .parser import ParseError, parse
from .printer import to_source

__all__ = [
    "CompileError",
    "CompiledProgram",
    "ExecutionError",
    "HostOp",
    "LexerError",
    "Loop",
    "ParseError",
    "ProgramRuntime",
    "Token",
    "compile_program",
    "compile_source",
    "parse",
    "to_source",
    "tokenize",
]
