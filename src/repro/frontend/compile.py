"""Compilation of custom-C ASTs to top-level instructions.

The output mirrors the paper's split: Table I instructions operate on
whole vectors (and are what the MIB executes), while scalar arithmetic
and loop control stay on the sequencer as host operations.  The
compiled top-level program references network schedules *by name* —
binding a schedule to a particular sparsity pattern happens later,
which is why "the top-level program is shared across different problem
domains and doesn't need to be recompiled" (Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.isa import TopInstruction, TopOpcode
from .parser import Assignment, Call, Declaration, Program, Repeat, Term, parse

__all__ = [
    "CompileError",
    "CompiledProgram",
    "HostOp",
    "Loop",
    "compile_program",
    "compile_source",
]


class CompileError(ValueError):
    """Raised on semantically invalid source."""


@dataclass(frozen=True)
class HostOp:
    """A sequencer-side scalar operation: ``target = Σ sign·Π factors``.

    ``terms`` is a tuple of ``(sign, factors)``; factors are scalar
    identifiers or numeric literals.
    """

    target: str
    terms: tuple[tuple[float, tuple[str, ...]], ...]


@dataclass(frozen=True)
class Loop:
    """A repeat block."""

    count: int
    body: tuple


@dataclass
class CompiledProgram:
    """Symbol tables plus the instruction stream."""

    schedules: set[str] = field(default_factory=set)
    vectors: set[str] = field(default_factory=set)
    scalars: set[str] = field(default_factory=set)
    instructions: list = field(default_factory=list)

    def count_instructions(self) -> int:
        """Total instruction count with loops expanded."""

        def count(body) -> int:
            total = 0
            for ins in body:
                if isinstance(ins, Loop):
                    total += ins.count * count(ins.body)
                else:
                    total += 1
            return total

        return count(self.instructions)


_CALL_OPCODES = {
    "load_vec": (TopOpcode.LOAD_VEC, 1),
    "write_vec": (TopOpcode.WRITE_VEC, 1),
    "net_compute": (TopOpcode.NET_COMPUTE, 1),
    "ew_reci": (TopOpcode.EW_RECI, 2),
    "ew_prod": (TopOpcode.EW_PROD, 3),
    "select_min": (TopOpcode.SELECT_MIN, 3),
    "select_max": (TopOpcode.SELECT_MAX, 3),
    "cond_set": (TopOpcode.COND_SET, 2),
}


class _Compiler:
    def __init__(self) -> None:
        self.out = CompiledProgram()

    # -- symbols ---------------------------------------------------------
    def declare(self, decl: Declaration) -> None:
        table = {
            "net_schedule": self.out.schedules,
            "vectorf": self.out.vectors,
            "float": self.out.scalars,
        }[decl.kind]
        for name in decl.names:
            if self._declared(name):
                raise CompileError(
                    f"line {decl.line}: {name!r} already declared"
                )
            table.add(name)

    def _declared(self, name: str) -> bool:
        return (
            name in self.out.schedules
            or name in self.out.vectors
            or name in self.out.scalars
        )

    def _is_number(self, text: str) -> bool:
        try:
            float(text)
            return True
        except ValueError:
            return False

    # -- statements ------------------------------------------------------
    def compile_body(self, statements) -> list:
        out = []
        for stmt in statements:
            if isinstance(stmt, Declaration):
                self.declare(stmt)
            elif isinstance(stmt, Assignment):
                out.append(self.compile_assignment(stmt))
            elif isinstance(stmt, Call):
                out.append(self.compile_call(stmt))
            elif isinstance(stmt, Repeat):
                out.append(Loop(stmt.count, tuple(self.compile_body(stmt.body))))
            else:  # pragma: no cover - parser produces nothing else
                raise CompileError(f"unknown statement {stmt!r}")
        return out

    def compile_call(self, call: Call) -> TopInstruction:
        if call.name not in _CALL_OPCODES:
            raise CompileError(
                f"line {call.line}: unknown intrinsic {call.name!r}"
            )
        opcode, arity = _CALL_OPCODES[call.name]
        if len(call.args) != arity:
            raise CompileError(
                f"line {call.line}: {call.name} expects {arity} argument(s)"
            )
        expected_first = (
            self.out.schedules
            if opcode is TopOpcode.NET_COMPUTE
            else self.out.vectors
        )
        if call.args[0] not in expected_first:
            raise CompileError(
                f"line {call.line}: {call.args[0]!r} has the wrong type for "
                f"{call.name}"
            )
        for arg in call.args[1:]:
            if opcode is TopOpcode.COND_SET:
                if arg not in self.out.scalars and not self._is_number(arg):
                    raise CompileError(
                        f"line {call.line}: cond_set value must be scalar"
                    )
            elif arg not in self.out.vectors:
                raise CompileError(
                    f"line {call.line}: {arg!r} is not a vector"
                )
        return TopInstruction(opcode=opcode, operands=call.args)

    def compile_assignment(self, stmt: Assignment):
        if stmt.call is not None:
            # Reductions: scalar = norm_inf(v).
            if stmt.call.name != "norm_inf":
                raise CompileError(
                    f"line {stmt.line}: only norm_inf may appear as an "
                    "assignment call"
                )
            if stmt.target not in self.out.scalars:
                raise CompileError(
                    f"line {stmt.line}: norm_inf target must be a scalar"
                )
            if len(stmt.call.args) != 1 or stmt.call.args[0] not in self.out.vectors:
                raise CompileError(
                    f"line {stmt.line}: norm_inf takes one vector"
                )
            return TopInstruction(
                opcode=TopOpcode.NORM_INF,
                operands=(stmt.target, stmt.call.args[0]),
            )
        assert stmt.terms is not None
        if stmt.target in self.out.vectors:
            return self._vector_assignment(stmt)
        if stmt.target in self.out.scalars:
            return self._scalar_assignment(stmt)
        raise CompileError(
            f"line {stmt.line}: assignment to undeclared {stmt.target!r}"
        )

    def _split_term(self, term: Term, line: int) -> tuple[tuple[str, ...], str | None]:
        """Separate a term's scalar coefficient factors from its vector."""
        scalars: list[str] = []
        vector: str | None = None
        for factor in term.factors:
            if factor in self.out.vectors:
                if vector is not None:
                    raise CompileError(
                        f"line {line}: product of two vectors — use ew_prod"
                    )
                vector = factor
            elif factor in self.out.scalars or self._is_number(factor):
                scalars.append(factor)
            else:
                raise CompileError(f"line {line}: undeclared {factor!r}")
        return tuple(scalars), vector

    def _vector_assignment(self, stmt: Assignment) -> TopInstruction:
        vec_terms: list[tuple[float, tuple[str, ...], str]] = []
        for term in stmt.terms:
            scalars, vector = self._split_term(term, stmt.line)
            if vector is None:
                raise CompileError(
                    f"line {stmt.line}: scalar term in vector assignment — "
                    "use cond_set for constants"
                )
            vec_terms.append((term.sign, scalars, vector))
        if len(vec_terms) == 1:
            sign, scalars, vector = vec_terms[0]
            # axpby with a zero second coefficient covers copy/scale.
            return TopInstruction(
                opcode=TopOpcode.AXPBY,
                operands=(stmt.target, sign, scalars, vector, 0.0, (), vector),
            )
        if len(vec_terms) == 2:
            (s0, c0, v0), (s1, c1, v1) = vec_terms
            return TopInstruction(
                opcode=TopOpcode.AXPBY,
                operands=(stmt.target, s0, c0, v0, s1, c1, v1),
            )
        raise CompileError(
            f"line {stmt.line}: more than two vector terms in one "
            "assignment — split the expression"
        )

    def _scalar_assignment(self, stmt: Assignment) -> HostOp:
        terms = []
        for term in stmt.terms:
            scalars, vector = self._split_term(term, stmt.line)
            if vector is not None:
                raise CompileError(
                    f"line {stmt.line}: vector in scalar assignment"
                )
            terms.append((term.sign, scalars))
        return HostOp(target=stmt.target, terms=tuple(terms))


def compile_program(program: Program) -> CompiledProgram:
    """Compile a parsed AST."""
    compiler = _Compiler()
    compiler.out.instructions = compiler.compile_body(program.statements)
    return compiler.out


def compile_source(source: str) -> CompiledProgram:
    """Parse + compile custom-C source text."""
    return compile_program(parse(source))
