"""Reproduction of "Multi-Issue Butterfly Architecture for Sparse
Convex Quadratic Programming" (MICRO 2024).

The package is layered exactly as DESIGN.md describes:

* :mod:`repro.linalg` — sparse linear-algebra substrate (CSC, AMD,
  elimination trees, LDLᵀ, triangular solves);
* :mod:`repro.solver` — the ADMM QP solver (OSQP reimplementation),
  direct and indirect variants;
* :mod:`repro.problems` — the 100-problem, five-domain benchmark suite;
* :mod:`repro.arch` — the Multi-Issue Butterfly architecture: topology,
  two-level ISA, register files, HBM model, cycle-level simulator;
* :mod:`repro.compiler` — sparsity-pattern-specific lowering and the
  first-fit multi-issue scheduler;
* :mod:`repro.backends` — the compiled MIB solver, host reference, and
  baseline platform models;
* :mod:`repro.analysis` — FLOP profiling, runtime/energy/jitter
  evaluation, report rendering.

Quickstart::

    from repro import QPProblem, solve, MIBSolver
    from repro.problems import portfolio_problem

    problem = portfolio_problem(50)
    result = solve(problem, variant="direct")     # host reference
    report = MIBSolver(problem, c=32).solve()     # cycle-exact backend
"""

from .backends import MIBSolveReport, MIBSolver
from .linalg import CSCMatrix
from .problems import (
    benchmark_suite,
    huber_problem,
    lasso_problem,
    mpc_problem,
    portfolio_problem,
    svm_problem,
)
from .solver import (
    OSQPSolver,
    QPProblem,
    Settings,
    SolveResult,
    SolverStatus,
    solve,
)

__version__ = "1.0.0"

__all__ = [
    "CSCMatrix",
    "MIBSolveReport",
    "MIBSolver",
    "OSQPSolver",
    "QPProblem",
    "Settings",
    "SolveResult",
    "SolverStatus",
    "__version__",
    "benchmark_suite",
    "huber_problem",
    "lasso_problem",
    "mpc_problem",
    "portfolio_problem",
    "solve",
    "svm_problem",
]
