"""Problem and matrix I/O.

Sparse matrices use the MatrixMarket coordinate format (the lingua
franca of QP benchmark collections such as Maros–Mészáros), and whole
QP problems round-trip through a single JSON document embedding the
matrices in coordinate form.  Pure standard library + numpy.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .linalg import CSCMatrix
from .solver import OSQP_INFTY, QPProblem

__all__ = [
    "decode_bounds",
    "encode_bounds",
    "read_matrix_market",
    "write_matrix_market",
    "load_problem",
    "problem_from_dict",
    "problem_to_dict",
    "problem_with_values",
    "save_problem",
    "read_qps",
]


def encode_bounds(v: np.ndarray) -> list:
    """JSON-safe bound vector: ±infinity as ``"inf"``/``"-inf"``."""
    return [
        "inf" if x >= OSQP_INFTY else "-inf" if x <= -OSQP_INFTY else x
        for x in v.tolist()
    ]


def decode_bounds(raw) -> np.ndarray:
    """Inverse of :func:`encode_bounds` (accepts plain numerics too)."""
    return np.array(
        [
            OSQP_INFTY
            if x == "inf"
            else -OSQP_INFTY
            if x == "-inf"
            else float(x)
            for x in raw
        ],
        dtype=np.float64,
    )


def write_matrix_market(matrix: CSCMatrix, path: str | Path) -> Path:
    """Write a matrix in MatrixMarket coordinate format (1-based)."""
    path = Path(path)
    rows, cols, vals = matrix.to_coo()
    lines = [
        "%%MatrixMarket matrix coordinate real general",
        f"{matrix.nrows} {matrix.ncols} {matrix.nnz}",
    ]
    for r, c, v in zip(rows.tolist(), cols.tolist(), vals.tolist()):
        lines.append(f"{r + 1} {c + 1} {v!r}")
    path.write_text("\n".join(lines) + "\n")
    return path


def read_matrix_market(path: str | Path) -> CSCMatrix:
    """Read a real coordinate MatrixMarket file.

    Supports ``general`` and ``symmetric`` qualifiers (symmetric files
    store one triangle; the mirror entries are reconstructed).
    """
    text = Path(path).read_text().splitlines()
    if not text or not text[0].startswith("%%MatrixMarket"):
        raise ValueError("not a MatrixMarket file")
    header = text[0].lower().split()
    if "coordinate" not in header or "real" not in header:
        raise ValueError("only real coordinate matrices are supported")
    symmetric = "symmetric" in header
    body = [ln for ln in text[1:] if ln.strip() and not ln.startswith("%")]
    nrows, ncols, nnz = (int(tok) for tok in body[0].split())
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for line in body[1 : 1 + nnz]:
        r_s, c_s, v_s = line.split()
        r, c, v = int(r_s) - 1, int(c_s) - 1, float(v_s)
        rows.append(r)
        cols.append(c)
        vals.append(v)
        if symmetric and r != c:
            rows.append(c)
            cols.append(r)
            vals.append(v)
    if len(body) - 1 != nnz:
        raise ValueError("entry count does not match header")
    return CSCMatrix.from_coo(
        (nrows, ncols), rows, cols, vals, sum_duplicates=False
    )


def read_qps(path: str | Path) -> QPProblem:
    """Read a QP in QPS format (the Maros–Mészáros convention).

    Supported sections: ``NAME``, ``ROWS`` (N/L/G/E), ``COLUMNS``,
    ``RHS``, ``RANGES``, ``BOUNDS`` (UP/LO/FX/FR/MI/PL/BV excluded —
    only continuous bound types), ``QUADOBJ``/``QMATRIX``, ``ENDATA``.
    The QPS objective is ``(1/2)xᵀQx + cᵀx``; QUADOBJ stores the lower
    triangle of ``Q``.

    Constraint rows become ``l ≤ Ax ≤ u`` rows; finite variable bounds
    are appended as identity rows (the OSQP convention).
    """
    lines = Path(path).read_text().splitlines()
    section = ""
    name = "qps"
    row_kind: dict[str, str] = {}
    row_order: list[str] = []
    obj_row: str | None = None
    col_order: list[str] = []
    col_index: dict[str, int] = {}
    a_entries: list[tuple[str, str, float]] = []  # (row, col, value)
    c_lin: dict[str, float] = {}
    rhs: dict[str, float] = {}
    ranges: dict[str, float] = {}
    q_entries: list[tuple[str, str, float]] = []
    lower_bound: dict[str, float] = {}
    upper_bound: dict[str, float] = {}

    for raw in lines:
        if not raw.strip() or raw.lstrip().startswith("*"):
            continue
        if not raw[0].isspace():
            tokens = raw.split()
            section = tokens[0].upper()
            if section == "NAME" and len(tokens) > 1:
                name = tokens[1]
            if section == "ENDATA":
                break
            continue
        tokens = raw.split()
        if section == "ROWS":
            kind, row = tokens[0].upper(), tokens[1]
            if kind == "N":
                if obj_row is None:
                    obj_row = row
            else:
                row_kind[row] = kind
                row_order.append(row)
        elif section == "COLUMNS":
            col = tokens[0]
            if col not in col_index:
                col_index[col] = len(col_order)
                col_order.append(col)
            for rname, value in zip(tokens[1::2], tokens[2::2]):
                v = float(value)
                if rname == obj_row:
                    c_lin[col] = c_lin.get(col, 0.0) + v
                else:
                    a_entries.append((rname, col, v))
        elif section == "RHS":
            for rname, value in zip(tokens[1::2], tokens[2::2]):
                if rname != obj_row:
                    rhs[rname] = float(value)
        elif section == "RANGES":
            for rname, value in zip(tokens[1::2], tokens[2::2]):
                ranges[rname] = float(value)
        elif section == "BOUNDS":
            btype = tokens[0].upper()
            col = tokens[2]
            value = float(tokens[3]) if len(tokens) > 3 else 0.0
            if btype == "UP":
                upper_bound[col] = value
            elif btype == "LO":
                lower_bound[col] = value
            elif btype == "FX":
                lower_bound[col] = value
                upper_bound[col] = value
            elif btype == "FR":
                lower_bound[col] = -OSQP_INFTY
            elif btype == "MI":
                lower_bound[col] = -OSQP_INFTY
            elif btype == "PL":
                upper_bound[col] = OSQP_INFTY
            else:
                raise ValueError(f"unsupported bound type {btype!r}")
        elif section in ("QUADOBJ", "QMATRIX"):
            c1, c2, value = tokens[0], tokens[1], float(tokens[2])
            q_entries.append((c1, c2, value))
        elif section in ("NAME", "OBJSENSE"):
            continue
        else:
            raise ValueError(f"unsupported QPS section {section!r}")

    if obj_row is None:
        raise ValueError("QPS file has no objective (N) row")
    n = len(col_order)
    m_rows = len(row_order)
    row_index = {r: i for i, r in enumerate(row_order)}

    # Constraint matrix and row bounds.
    ar = [row_index[r] for r, _, _ in a_entries]
    ac = [col_index[c] for _, c, _ in a_entries]
    av = [v for _, _, v in a_entries]
    l = np.empty(m_rows)
    u = np.empty(m_rows)
    for r in row_order:
        i = row_index[r]
        b = rhs.get(r, 0.0)
        kind = row_kind[r]
        if kind == "E":
            l[i] = u[i] = b
        elif kind == "L":
            l[i], u[i] = -OSQP_INFTY, b
        elif kind == "G":
            l[i], u[i] = b, OSQP_INFTY
        else:  # pragma: no cover - ROWS parsing restricts kinds
            raise ValueError(f"unknown row kind {kind!r}")
        if r in ranges:
            rng_v = abs(ranges[r])
            if kind == "L":
                l[i] = u[i] - rng_v
            elif kind == "G":
                u[i] = l[i] + rng_v
            else:  # E row: range widens per MPS convention
                u[i] = l[i] + rng_v

    # Variable bounds as identity rows (QPS default: x >= 0).
    box_lo = np.array(
        [lower_bound.get(c, 0.0) for c in col_order], dtype=np.float64
    )
    box_hi = np.array(
        [upper_bound.get(c, OSQP_INFTY) for c in col_order], dtype=np.float64
    )
    ar += [m_rows + j for j in range(n)]
    ac += list(range(n))
    av += [1.0] * n
    a = CSCMatrix.from_coo((m_rows + n, n), ar, ac, av)
    l_full = np.concatenate([l, box_lo])
    u_full = np.concatenate([u, box_hi])

    # Quadratic objective: QUADOBJ stores the lower triangle of Q with
    # (1/2)x'Qx convention — exactly the standard form's P.
    pr = [col_index[c1] for c1, _, _ in q_entries]
    pc = [col_index[c2] for _, c2, _ in q_entries]
    pv = [v for _, _, v in q_entries]
    # Mirror off-diagonal entries into the full symmetric matrix.
    rows_full, cols_full, vals_full = [], [], []
    for r, c, v in zip(pr, pc, pv):
        rows_full.append(r)
        cols_full.append(c)
        vals_full.append(v)
        if r != c:
            rows_full.append(c)
            cols_full.append(r)
            vals_full.append(v)
    p = CSCMatrix.from_coo((n, n), rows_full, cols_full, vals_full)
    q = np.array([c_lin.get(c, 0.0) for c in col_order], dtype=np.float64)
    return QPProblem(p=p, q=q, a=a, l=l_full, u=u_full, name=name)


def _matrix_to_obj(matrix: CSCMatrix) -> dict:
    rows, cols, vals = matrix.to_coo()
    return {
        "shape": list(matrix.shape),
        "rows": rows.tolist(),
        "cols": cols.tolist(),
        "values": vals.tolist(),
    }


def _matrix_from_obj(obj: dict) -> CSCMatrix:
    return CSCMatrix.from_coo(
        tuple(obj["shape"]),
        obj["rows"],
        obj["cols"],
        obj["values"],
        sum_duplicates=False,
    )


def problem_to_dict(problem: QPProblem) -> dict:
    """The ``repro-qp-v1`` JSON document form of a QP.

    This is the wire encoding of the serve layer's ``POST /v1/solve``
    payloads as well as the on-disk format of :func:`save_problem`;
    infinite bounds are encoded as the strings ``"inf"``/``"-inf"``
    (JSON has no infinity literal).
    """
    return {
        "format": "repro-qp-v1",
        "name": problem.name,
        "P": _matrix_to_obj(problem.p_upper),
        "q": problem.q.tolist(),
        "A": _matrix_to_obj(problem.a),
        "l": encode_bounds(problem.l),
        "u": encode_bounds(problem.u),
    }


def problem_from_dict(doc: dict) -> QPProblem:
    """Rebuild a QP from its ``repro-qp-v1`` document form."""
    if doc.get("format") != "repro-qp-v1":
        raise ValueError("unrecognized problem file format")
    return QPProblem(
        p=_matrix_from_obj(doc["P"]),
        q=np.asarray(doc["q"], dtype=np.float64),
        a=_matrix_from_obj(doc["A"]),
        l=decode_bounds(doc["l"]),
        u=decode_bounds(doc["u"]),
        name=doc.get("name", "qp"),
    )


def problem_with_values(
    base: QPProblem,
    *,
    q=None,
    l=None,
    u=None,
    a_data=None,
    p_data=None,
) -> QPProblem:
    """A same-pattern variant of ``base`` with some values replaced.

    The materialization step behind ``/v1/sequence`` and
    ``/v1/scenarios`` step overrides: every field left ``None``
    *shares* the base's array object, so an override that only touches
    ``q``/``l``/``u`` keeps the matrix value arrays bitwise identical
    to the base — exactly the condition the solver's delta-bind fast
    path tests for.  ``p_data`` replaces the non-zeros of the **upper
    triangle** of ``P`` in canonical CSC order (the wire convention);
    ``a_data`` likewise replaces ``A``'s non-zeros.  Index arrays are
    pattern constants and always shared.
    """
    p_upper = base.p_upper
    if p_data is None:
        p = p_upper
    else:
        p_data = np.asarray(p_data, dtype=np.float64)
        if p_data.size != p_upper.nnz:
            raise ValueError(
                f"p_data has {p_data.size} values, pattern has "
                f"{p_upper.nnz} non-zeros"
            )
        p = CSCMatrix(
            p_upper.shape, p_upper.indptr, p_upper.indices, p_data,
            check=False,
        )
    if a_data is None:
        a = base.a
    else:
        a_data = np.asarray(a_data, dtype=np.float64)
        if a_data.size != base.a.nnz:
            raise ValueError(
                f"a_data has {a_data.size} values, pattern has "
                f"{base.a.nnz} non-zeros"
            )
        a = CSCMatrix(
            base.a.shape, base.a.indptr, base.a.indices, a_data, check=False
        )

    def vector(override, current: np.ndarray, name: str) -> np.ndarray:
        if override is None:
            return current
        arr = np.asarray(override, dtype=np.float64)
        if arr.shape != current.shape:
            raise ValueError(
                f"{name} override has shape {arr.shape}, "
                f"expected {current.shape}"
            )
        return arr

    return QPProblem(
        p=p,
        q=vector(q, base.q, "q"),
        a=a,
        l=vector(l, base.l, "l"),
        u=vector(u, base.u, "u"),
        name=base.name,
    )


def save_problem(problem: QPProblem, path: str | Path) -> Path:
    """Serialize a QP to a JSON document (infinities encoded)."""
    path = Path(path)
    path.write_text(json.dumps(problem_to_dict(problem)))
    return path


def load_problem(path: str | Path) -> QPProblem:
    """Load a QP saved by :func:`save_problem`."""
    return problem_from_dict(json.loads(Path(path).read_text()))
