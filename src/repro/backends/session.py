"""Streaming solve sessions: pinned solver, carried iterate, carried ρ.

The paper's flagship workloads are parametric *sequences* — receding-
horizon MPC, lasso regularization paths, portfolio backtests — where
consecutive instances share one sparsity pattern and differ only in
values.  A :class:`SolveSession` pins one pattern-compiled
:class:`~repro.backends.mib.MIBSolver` and carries ``(x, y, ρ)`` across
re-solves so every step after the first starts from the previous
solution with the previously adapted penalty, and rebinds through the
delta fast path (:meth:`~repro.backends.mib.MIBSolver.bind_values`)
when only ``q``/``l``/``u`` changed.

Carried state is **continuation-scoped**: it survives only while the
stream stays a vectors-only (delta) continuation of the session's own
previous instance.  A step whose matrix values differ is a *regime
change* — a new market day's covariances, a re-linearized plant — and
the previous trajectory's iterate and duals are stale there; carrying
them measurably *hurts* (stale duals cost more iterations than a cold
start).  Such steps therefore solve cold (fresh iterate, configured
initial ρ) and start a new continuation.  ``carry_across_rebinds=True``
opts out for workloads whose matrices drift smoothly (SQP-style
re-linearization) where cross-rebind warm starts do help.

Continuation is classified against the *session's own* last instance,
not against whatever values happen to be bound to the shared solver —
interleaved sessions on one resident solver rebind it constantly, and
classifying against solver state would make one session's trajectory
(and results) depend on another's timing.

Determinism contract (DESIGN.md §5.8): step *i* of a session is
bitwise identical to a solo solve of the same instance on a
same-lineage solver given the session state entering the step —

    twin.bind_instance(problem_i, rho0=rho_{i-1})
    twin.solve(x0=x_{i-1}, y0=y_{i-1})

where ``(x_{i-1}, y_{i-1}, rho_{i-1})`` is the carried state
(``(None, None, settings.rho)`` for step 0 and for every regime-change
step).  The fast paths only skip recomputation of values that are
bitwise unchanged, so they cannot perturb the trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..solver import QPProblem
from .mib import MIBSolveReport, MIBSolver

__all__ = ["SessionStep", "SolveSession"]


@dataclass(frozen=True)
class SessionStep:
    """One session step: the solve report plus how the bind was served."""

    report: MIBSolveReport
    index: int  # 0-based step number within the session
    # "delta": vectors-only continuation of the session's previous
    # instance (carried state applies); "full": first step or regime
    # change (matrix values differ — solved cold).
    bind: str
    refactorized: bool  # the step paid a numeric KKT refactorization
    warm: bool  # started from a carried iterate (False for step 0)

    @property
    def delta_bind(self) -> bool:
        return self.bind == "delta"


class SolveSession:
    """Carry ``(x, y, ρ)`` across re-solves of one compiled solver.

    The session does not own the solver: a serve-pool entry lends its
    resident solver to many sessions of the same pattern, each
    restoring its own carried state before stepping (see
    :mod:`repro.serve.session`).  Within one session, :meth:`step` is
    strictly sequential — the caller serializes concurrent use.
    """

    def __init__(
        self, solver: MIBSolver, *, carry_across_rebinds: bool = False
    ) -> None:
        self.solver = solver
        self.carry_across_rebinds = carry_across_rebinds
        self.x: np.ndarray | None = None
        self.y: np.ndarray | None = None
        # Fresh sessions start from the configured initial ρ — the same
        # starting point as bind_instance() — not from wherever a
        # previous tenant of the shared solver left its adaptation.
        self.rho: float = float(solver.reference.settings.rho)
        # Matrix values of the session's own previous instance — the
        # continuation classifier (NOT the solver's bound values).
        self.last_a_data: np.ndarray | None = None
        self.last_p_data: np.ndarray | None = None
        self.steps = 0
        self.delta_binds = 0

    # ------------------------------------------------------------------
    def restore(
        self,
        x: np.ndarray | None,
        y: np.ndarray | None,
        rho: float | None,
        *,
        a_data: np.ndarray | None = None,
        p_data: np.ndarray | None = None,
    ) -> None:
        """Install externally held session state (serve-layer store).

        ``a_data``/``p_data`` are the matrix values of the stream's
        previous instance; without them the next step cannot prove
        continuation and solves cold.
        """
        self.x = None if x is None else np.asarray(x, dtype=np.float64)
        self.y = None if y is None else np.asarray(y, dtype=np.float64)
        if rho is not None:
            self.rho = float(rho)
        self.last_a_data = a_data
        self.last_p_data = p_data

    def reset(self) -> None:
        """Drop carried state; the next step is a cold start."""
        self.x = None
        self.y = None
        self.rho = float(self.solver.reference.settings.rho)
        self.last_a_data = None
        self.last_p_data = None

    # ------------------------------------------------------------------
    def _continues(self, problem: QPProblem) -> bool:
        """Is ``problem`` a vectors-only continuation of this stream?"""
        return (
            self.last_a_data is not None
            and np.array_equal(problem.a.data, self.last_a_data)
            and np.array_equal(problem.p_upper.data, self.last_p_data)
        )

    def step(self, problem: QPProblem) -> SessionStep:
        """Bind the next instance of the stream and solve it.

        Vectors-only continuations ride the delta bind (no matrix
        rescale, no refactorization) and start from the carried state;
        the carried ρ is installed through
        :meth:`~repro.backends.mib.MIBSolver.bind_rho`, which
        refactorizes only when the per-constraint vector changed.
        Regime changes (matrix values differ) drop the carried state
        and solve cold, unless ``carry_across_rebinds`` was set.
        """
        continuation = self._continues(problem)
        if not continuation and not self.carry_across_rebinds:
            # Regime change: the previous trajectory is stale here.
            self.x = None
            self.y = None
            self.rho = float(self.solver.reference.settings.rho)
        warm = self.x is not None
        # The solver-level bind may still be a full rebind on a session
        # continuation (an interleaved session rebound the shared
        # solver); that changes cost, never results — both bind paths
        # are bitwise equivalent.
        solver_bind = self.solver.bind_values(problem)
        rho_refactorized = self.solver.bind_rho(self.rho)
        report = self.solver.solve(x0=self.x, y0=self.y)
        result = report.result
        self.x = np.array(result.x, dtype=np.float64, copy=True)
        self.y = np.array(result.y, dtype=np.float64, copy=True)
        # Adaptation inside solve() mutates the solver's ρ persistently;
        # carry it so the next step resumes where this one ended.
        self.rho = float(self.solver.reference.rho)
        self.last_a_data = problem.a.data
        self.last_p_data = problem.p_upper.data
        index = self.steps
        self.steps += 1
        if continuation:
            self.delta_binds += 1
        return SessionStep(
            report=report,
            index=index,
            bind="delta" if continuation else "full",
            refactorized=rho_refactorized or solver_bind == "full",
            warm=warm,
        )
