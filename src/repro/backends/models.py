"""Analytical baseline platform models (CPU / GPU / RSQP).

The paper measures an i7-10700KF (MKL and QDLDL backends), an RTX 3070
(cuSparse backend) and the RSQP CPU+FPGA solver.  None of that hardware
exists in this reproduction environment, so — per the substitution
policy in DESIGN.md — each baseline is an analytical cost model fed by
the *measured algorithm trace* of the reference solver (FLOPs per
primitive, iteration counts, CG iterations).  The constants below are
calibrated against Table II's platform specs and the published
behaviour of sparse kernels on those platforms, so the *shape* of the
comparisons (who wins, by roughly what factor) is preserved; absolute
times are not claims.

Model form, per solve:

    runtime = Σ_ops flops / (peak · sparse_efficiency)
            + iterations · per_iteration_overhead
            + transfers / link_bandwidth  (heterogeneous solvers only)

Jitter is modeled as a multiplicative lognormal factor whose standard
deviation matches the class of platform (OS scheduling + cache noise on
the CPU, kernel-launch and PCIe variability on the GPU, near-zero on
the cycle-deterministic FPGA).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..solver import Primitive, SolveResult

__all__ = [
    "Platform",
    "PLATFORMS",
    "cpu_platform_for",
    "model_runtime",
    "sample_jittered_runtimes",
]


@dataclass(frozen=True)
class Platform:
    """A baseline execution platform (one column of Table II)."""

    name: str
    peak_flops: float
    bandwidth_bytes: float
    clock_hz: float
    tdp_watts: float
    idle_watts: float
    load_watts: float
    # Effective fraction of peak sustained on irregular sparse kernels.
    sparse_efficiency: dict[Primitive, float]
    # Fixed overhead charged per ADMM iteration (control flow, kernel
    # launches, synchronization).
    iteration_overhead_s: float
    # Per-solve fixed overhead (setup, dispatch).
    solve_overhead_s: float
    # Relative runtime jitter (σ/μ).
    jitter_cv: float
    # Heterogeneous link crossed every iteration (bytes/s), if any.
    per_iter_link_bytes_per_s: float | None = None
    link_latency_s: float = 0.0


def _uniform(eff: float) -> dict[Primitive, float]:
    return {p: eff for p in Primitive}


# Calibration notes (constants fitted so the geometric-mean speedups
# over a 25-problem calibration grid land at the paper's Table III
# values; the fitted numbers are physically plausible for each class):
# * CPU-MKL (indirect): sparse CG on >99%-sparse matrices with short
#   irregular rows sustains ~0.1 GFLOP/s — latency-bound gathers plus
#   per-call library overhead, far below the 500 GFLOP/s dense peak.
# * CPU-QDLDL (direct): a lean cache-friendly native factorization;
#   substantially higher sustained fraction than MKL's general sparse
#   kernels on these patterns (which is why the paper's direct-variant
#   speedup is only 2.7x vs 30.5x indirect).
# * GPU: cuSparse SpMV on small irregular matrices is launch-latency
#   bound — tens of microseconds of fixed cost per ADMM iteration, and
#   scalar device->host syncs for control flow (the cuOSQP
#   observation quoted in Section V-A).
# * RSQP: FPGA PCG datapath, but the KKT solution vector crosses PCIe
#   both ways every ADMM iteration (Section V-A) — the cost the
#   paper's full-FPGA design removes.
PLATFORMS: dict[str, Platform] = {
    "cpu_mkl": Platform(
        name="CPU (i7-10700KF, MKL)",
        peak_flops=500e9,
        bandwidth_bytes=45.8e9,
        clock_hz=3.8e9,
        tdp_watts=125.0,
        idle_watts=22.0,
        load_watts=49.0,
        sparse_efficiency={
            Primitive.MAC: 2.7e-4,
            Primitive.COLUMN_ELIM: 2.1e-4,
            Primitive.PERMUTE: 7e-4,
            Primitive.ELEMENTWISE: 3.5e-3,
        },
        iteration_overhead_s=7e-6,
        solve_overhead_s=60e-6,
        jitter_cv=0.08,
    ),
    "cpu_qdldl": Platform(
        name="CPU (i7-10700KF, QDLDL)",
        peak_flops=500e9,
        bandwidth_bytes=45.8e9,
        clock_hz=3.8e9,
        tdp_watts=125.0,
        idle_watts=22.0,
        load_watts=49.0,
        sparse_efficiency={
            Primitive.MAC: 1.9e-3,
            Primitive.COLUMN_ELIM: 1.6e-3,
            Primitive.PERMUTE: 4e-3,
            Primitive.ELEMENTWISE: 2e-2,
        },
        iteration_overhead_s=2e-6,
        solve_overhead_s=50e-6,
        jitter_cv=0.08,
    ),
    "gpu": Platform(
        name="GPU (RTX 3070, cuSparse)",
        peak_flops=20e12,
        bandwidth_bytes=448e9,
        clock_hz=1.75e9,
        tdp_watts=220.0,
        idle_watts=30.0,
        load_watts=65.0,
        sparse_efficiency={
            Primitive.MAC: 7e-4,
            Primitive.COLUMN_ELIM: 6e-4,
            Primitive.PERMUTE: 2.2e-3,
            Primitive.ELEMENTWISE: 1.1e-2,
        },
        iteration_overhead_s=33e-6,
        solve_overhead_s=200e-6,
        jitter_cv=0.16,
    ),
    "rsqp": Platform(
        name="RSQP (CPU+FPGA heterogeneous)",
        peak_flops=15.1e9,
        bandwidth_bytes=115.2e9,
        clock_hz=236e6,
        tdp_watts=75.0,
        idle_watts=12.0,
        load_watts=18.0,
        sparse_efficiency={
            Primitive.MAC: 0.10,
            Primitive.COLUMN_ELIM: 0.08,
            Primitive.PERMUTE: 0.2,
            Primitive.ELEMENTWISE: 0.2,
        },
        iteration_overhead_s=0.0,
        solve_overhead_s=100e-6,
        jitter_cv=0.06,
        per_iter_link_bytes_per_s=8e9,
        link_latency_s=38e-6,
    ),
}


def cpu_platform_for(variant: str) -> Platform:
    """The paper pairs each variant with its own CPU library: QDLDL for
    OSQP-direct, MKL for OSQP-indirect."""
    return PLATFORMS["cpu_qdldl" if variant == "direct" else "cpu_mkl"]


def model_runtime(
    platform: Platform,
    result: SolveResult,
    *,
    vector_words_per_iter: int = 0,
) -> float:
    """Modeled end-to-end runtime of one solve on a baseline platform.

    Parameters
    ----------
    platform:
        The platform model.
    result:
        Reference solve result carrying the operation trace and
        iteration count.
    vector_words_per_iter:
        Words crossing the heterogeneous link each iteration (RSQP's
        solution vector); ignored for single-device platforms.
    """
    compute = 0.0
    for primitive, flops in result.trace.by_primitive.items():
        eff = platform.sparse_efficiency[primitive]
        compute += flops / (platform.peak_flops * eff)
    runtime = (
        compute
        + result.iterations * platform.iteration_overhead_s
        + platform.solve_overhead_s
    )
    if platform.per_iter_link_bytes_per_s:
        per_iter = (
            platform.link_latency_s
            + 4.0 * vector_words_per_iter / platform.per_iter_link_bytes_per_s
        )
        runtime += result.iterations * per_iter
    return runtime


def sample_jittered_runtimes(
    mean_runtime: float,
    jitter_cv: float,
    n_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample repeated-solve runtimes with multiplicative jitter.

    Lognormal with σ/μ = ``jitter_cv`` — the repeated-measurement
    experiment behind Fig. 11.
    """
    if jitter_cv <= 0:
        return np.full(n_samples, mean_runtime)
    sigma = np.sqrt(np.log(1.0 + jitter_cv**2))
    mu = -0.5 * sigma**2  # unit mean
    return mean_runtime * rng.lognormal(mean=mu, sigma=sigma, size=n_samples)
