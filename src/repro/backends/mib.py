"""The MIB backend: compile a QP's sparsity pattern, solve with exact
cycle accounting, and (for validation) execute the core kernels on the
network simulator.

A :class:`MIBSolver` is the reproduction's counterpart of the paper's
prototype system:

* **compile once per sparsity pattern** — lowering + multi-issue
  scheduling of every kernel the chosen algorithm variant needs
  (Section III-D; the compile time is amortized over the many instances
  that share the pattern);
* **solve** — runs the ADMM algorithm (bit-identical to the reference
  :class:`~repro.solver.OSQPSolver`, which is the same algorithm the
  hardware executes) and accounts the *exact* cycles of every kernel
  invocation from its static schedule, yielding a deterministic
  runtime (the property Fig. 11 measures);
* **network-executed validation** — the KKT solve and the reduced-
  matrix product can be run end-to-end through the cycle-level
  simulator and compared against the host computation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..arch import (
    BatchSimState,
    BatchStreamBuffers,
    CompiledTrace,
    FusedBatchRun,
    FusedRun,
    FusedTrace,
    NetworkSimulator,
    SimulationStats,
    StreamBuffers,
    compile_trace,
    fuse_iteration,
    fusion_stamp_matches,
    stamp_matches,
)
from ..arch.resources import clock_frequency_hz
from ..linalg import CSCMatrix
from ..xp import BackendPolicy
from ..compiler import (
    CompiledArtifact,
    KernelBuilder,
    NetworkProgram,
    Schedule,
    ScheduleCache,
    ScheduleOptions,
    VectorSlot,
    row_major_view,
    schedule_program,
)
from ..solver import (
    DirectKKTSolver,
    IndirectKKTSolver,
    OSQPSolver,
    QPProblem,
    Settings,
    SolveResult,
    SolverStatus,
    dual_infeasibility,
    primal_infeasibility,
    residuals_from_products,
)
from ..solver.admm import _RHO_LOOSE
from ..solver.problem import OSQP_INFTY

__all__ = [
    "BatchProgress",
    "CHECK_KERNELS",
    "ITERATION_KERNELS",
    "MIBSolver",
    "MIBSolveReport",
    "MIBNetworkSolveReport",
    "MIBBatchReport",
    "PCIE_BANDWIDTH",
    "PCIE_LATENCY",
]

PCIE_BANDWIDTH = 8e9  # bytes/s host link (Gen3 x8 effective)
PCIE_LATENCY = 10e-6  # per transfer

# The ADMM loop body as data: the kernels one iteration executes, in
# order, plus the residual products appended on check iterations.  The
# iteration engines below and the fusion pass both consume this program
# rather than hard-coding kernel names in control flow.
ITERATION_KERNELS = ("iter_pre", "kkt_solve", "iter_post")
CHECK_KERNELS = ("residuals",)


@dataclass
class MIBSolveReport:
    """Outcome of a solve on the MIB backend."""

    result: SolveResult
    cycles: int
    runtime_seconds: float
    clock_hz: float
    kernel_cycles: dict[str, int]
    kernel_invocations: dict[str, int]
    transfer_seconds: float

    @property
    def solve_seconds(self) -> float:
        """Pure on-device time (excludes PCIe)."""
        return self.cycles / self.clock_hz


@dataclass
class MIBNetworkSolveReport:
    """Outcome of a fully network-executed solve
    (:meth:`MIBSolver.solve_on_network`)."""

    status: SolverStatus
    x: np.ndarray
    z: np.ndarray
    y: np.ndarray
    iterations: int
    cycles: int
    primal_residual: float
    dual_residual: float
    rho_updates: int
    objective: float
    primal_infeasibility_certificate: np.ndarray | None = None
    dual_infeasibility_certificate: np.ndarray | None = None
    # Batch path only: the lane left the lockstep group (ρ
    # refactorization or bail-out split) and finished solo.
    solo: bool = False
    # Batch path only: the lane was split out by a ``progress``
    # callback's bail-out decision rather than by ρ adaptation.
    bailed: bool = False
    # Host→numpy crossings of the whole solve (observability, not
    # priced in cycles).  Excluded from equality: execution modes are
    # bit-identical in results and cycles while differing exactly here.
    host_crossings: int = field(default=0, compare=False)

    @property
    def solved(self) -> bool:
        return self.status is SolverStatus.SOLVED


@dataclass
class MIBBatchReport:
    """Outcome of :meth:`MIBSolver.solve_batch`: B lanes solved in one
    lockstep pass over a shared compiled pattern."""

    lanes: list[MIBNetworkSolveReport]  # input order
    batch: int
    solo_lanes: int  # lanes that finished outside the lockstep group
    total_cycles: int  # Σ per-lane cycles (sequential-equivalent work)
    max_cycles: int  # slowest lane (the batch's modeled wall time)
    bailout_lanes: int = 0  # solo lanes split out by a bail-out decision
    rho0: float | None = None  # initial ρ the lanes started from

    @property
    def solved_lanes(self) -> int:
        return sum(r.solved for r in self.lanes)


@dataclass(frozen=True)
class BatchProgress:
    """Live lockstep snapshot handed to the ``progress`` callback of
    :meth:`MIBSolver.solve_batch` at every residual check of a
    multi-lane group.

    ``primal_ratio``/``dual_ratio`` are each live lane's residual over
    its termination tolerance (``<= 1`` on both means the lane is about
    to harvest); their spread across ``ids`` is the live convergence
    heterogeneity a batching policy bails out on.  The callback returns
    an iterable of lane ids (original batch indices) to split out of
    lockstep into solo groups — each split lane continues from exactly
    this iteration with unchanged state, so its results stay
    bit-identical to a solo solve.
    """

    iteration: int
    ids: np.ndarray
    primal_ratio: np.ndarray
    dual_ratio: np.ndarray


@dataclass
class _CompiledKernels:
    schedules: dict[str, Schedule] = field(default_factory=dict)

    def cycles(self, name: str) -> int:
        return self.schedules[name].cycles

    def __contains__(self, name: str) -> bool:
        return name in self.schedules


@dataclass
class _BatchMaps:
    """Pattern-derived index maps and scaling factors for the batch
    solve path (computed once per solver, shared by every batch).

    The maps let B same-pattern instances be scaled and assembled into
    per-lane KKT value rows with pure gathers — bitwise identical to
    what :meth:`OSQPSolver.update_values` + the KKT backend produce for
    each instance individually, because every derived matrix in that
    chain (symmetrize, permute, upper-triangle) is a value-preserving
    stable gather.
    """

    qfac: np.ndarray  # c·d (scales q)
    a_fac: np.ndarray  # e_row · d_col per A entry
    pu_fac: np.ndarray  # d_row · d_col per P-upper entry
    pf_map: np.ndarray  # P-upper data -> P-full data gather
    perm_map: np.ndarray  # KKT data -> permuted-upper data gather
    p_positions: np.ndarray
    p_diag_positions: np.ndarray
    a_positions: np.ndarray
    rho_positions: np.ndarray
    sigma: float
    l_nnz: int
    n: int
    m: int
    a_indices: np.ndarray
    a_entry_cols: np.ndarray
    pf_indices: np.ndarray
    pf_entry_cols: np.ndarray

    # Per-lane mat-vecs on explicit data rows, replicating
    # CSCMatrix.matvec/rmatvec bitwise (same bincount reductions).
    def a_matvec(self, data: np.ndarray, x: np.ndarray) -> np.ndarray:
        return np.bincount(
            self.a_indices, weights=data * x[self.a_entry_cols],
            minlength=self.m,
        )[: self.m]

    def a_rmatvec(self, data: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.bincount(
            self.a_entry_cols, weights=data * y[self.a_indices],
            minlength=self.n,
        )[: self.n]

    def p_matvec(self, data: np.ndarray, x: np.ndarray) -> np.ndarray:
        return np.bincount(
            self.pf_indices, weights=data * x[self.pf_entry_cols],
            minlength=self.n,
        )[: self.n]


class _LaneGroup:
    """Batch lanes advancing in lockstep through the ADMM loop.

    One kernel replay serves every lane in the group; per-lane numeric
    state lives in the batched context/streams/value arrays.  Lanes
    leave the group by early harvest (converged / infeasible) or by
    triggering a ρ refactorization, which extracts them into a solo
    group so the remaining lanes never execute — or wait on — a
    factorization they did not ask for.
    """

    def __init__(
        self,
        *,
        ids: np.ndarray,
        ctx: BatchSimState,
        streams: BatchStreamBuffers,
        arrays: dict[str, np.ndarray],
        rho: np.ndarray,
        cycles: np.ndarray,
        rho_updates: np.ndarray,
        crossings: np.ndarray | None = None,
        start_iteration: int = 0,
        solo: bool = False,
        needs_refactor: bool = True,
        bailed: bool = False,
    ) -> None:
        self.ids = ids
        self.ctx = ctx
        self.streams = streams
        self.arrays = arrays
        self.rho = rho
        self.cycles = cycles
        self.rho_updates = rho_updates
        self.crossings = (
            crossings
            if crossings is not None
            else np.zeros(ids.size, dtype=np.int64)
        )
        self.start_iteration = start_iteration
        self.solo = solo
        # Whether the group must run the factor kernel before its first
        # KKT solve.  True for the root group (initial factorization)
        # and ρ-split children (the spawner installed a new ρ); False
        # for bail-out children, whose extracted streams already carry
        # the lane's live L/Dinv rows — rerunning factor would charge
        # cycles a solo solve never pays.
        self.needs_refactor = needs_refactor
        self.bailed = bailed

    def compact(self, keep: np.ndarray) -> None:
        self.ids = self.ids[keep]
        self.rho = self.rho[keep]
        self.cycles = self.cycles[keep]
        self.rho_updates = self.rho_updates[keep]
        self.crossings = self.crossings[keep]
        for name, arr in self.arrays.items():
            self.arrays[name] = arr[keep]
        self.ctx.compact(keep)
        self.streams.compact(keep)

    def extract(
        self,
        row: int,
        *,
        start_iteration: int,
        needs_refactor: bool = True,
        bailed: bool = False,
    ) -> "_LaneGroup":
        return _LaneGroup(
            ids=self.ids[row : row + 1].copy(),
            ctx=self.ctx.extract(row),
            streams=self.streams.extract(row),
            arrays={
                k: v[row : row + 1].copy() for k, v in self.arrays.items()
            },
            rho=self.rho[row : row + 1].copy(),
            cycles=self.cycles[row : row + 1].copy(),
            rho_updates=self.rho_updates[row : row + 1].copy(),
            crossings=self.crossings[row : row + 1].copy(),
            start_iteration=start_iteration,
            solo=True,
            needs_refactor=needs_refactor,
            bailed=bailed or self.bailed,
        )


class _ReplayIterationEngine:
    """Per-kernel iteration loop body for the sequential network solve.

    Runs :data:`ITERATION_KERNELS` (plus :data:`CHECK_KERNELS` on check
    iterations) one compiled kernel at a time through the solver's
    configured ``replay``/``interpret`` dispatch.  State lives in the
    simulator image at all times, so the flush/invalidate hooks of the
    engine protocol are no-ops.
    """

    def __init__(
        self, solver: "MIBSolver", sim: NetworkSimulator, streams
    ) -> None:
        self.solver = solver
        self.sim = sim
        self.streams = streams

    def run(self, *, check: bool) -> SimulationStats:
        total = SimulationStats()
        names = ITERATION_KERNELS + (CHECK_KERNELS if check else ())
        for name in names:
            stats = self.solver._run_kernel(self.sim, name, self.streams)
            total.cycles += stats.cycles
            total.host_crossings += stats.host_crossings
            total.phases_executed += stats.phases_executed
        return total

    def read_view(self, view) -> np.ndarray:
        return self.sim.rf.read_vector(view)

    def flush(self) -> None:
        pass

    def invalidate(self) -> None:
        pass


class _FusedIterationEngine:
    """Whole-iteration loop body: one :class:`FusedTrace` replay per
    iteration, with persistent fused state between iterations.

    ``flush`` scatters the fused-written words back to the simulator
    image (before a refactorization or any non-fused kernel touches
    it); ``invalidate`` marks the fused state stale so the next replay
    re-syncs from the image and the rebound streams.
    """

    def __init__(
        self, solver: "MIBSolver", sim: NetworkSimulator, streams
    ) -> None:
        self.sim = sim
        self.streams = streams
        self.trace = solver._fused_trace(sim)
        self._n_iter = self.trace.segment_index(ITERATION_KERNELS)
        self.run_state = FusedRun(self.trace, solver._xp_seq)

    def run(self, *, check: bool) -> SimulationStats:
        count = None if check else self._n_iter
        return self.trace.replay_fused(
            self.run_state, self.sim, self.streams, count
        )

    def read_view(self, view) -> np.ndarray:
        if not self.run_state.valid:
            # Invalidation always follows a flush, so the image is
            # current whenever the fused state is not.
            return self.sim.rf.read_vector(view)
        return self.run_state.read_view(self.sim, view)

    def flush(self) -> None:
        if self.run_state.valid:
            self.run_state.sync_out(self.sim)

    def invalidate(self) -> None:
        self.run_state.invalidate()


class _ReplayBatchIterationEngine:
    """Per-kernel batched loop body (replay/interpret-free: the batch
    path always replays traces)."""

    def __init__(
        self, solver: "MIBSolver", sim: NetworkSimulator, g: _LaneGroup
    ) -> None:
        self.solver = solver
        self.sim = sim
        self.g = g

    def run(self, *, check: bool) -> SimulationStats:
        total = SimulationStats()
        names = ITERATION_KERNELS + (CHECK_KERNELS if check else ())
        for name in names:
            stats = self.solver._trace(name, self.sim).replay_batch(
                self.g.ctx, self.g.streams
            )
            total.cycles += stats.cycles
            total.host_crossings += stats.host_crossings
            total.phases_executed += stats.phases_executed
        return total

    def read_view(self, view) -> np.ndarray:
        return self.g.ctx.read_vector(view)

    def flush(self) -> None:
        pass

    def invalidate(self) -> None:
        pass


class _FusedBatchIterationEngine:
    """Whole-iteration batched loop body over a
    :class:`~repro.arch.batch.BatchSimState`.

    The solver flushes before any lane surgery (harvest compaction,
    solo extraction, refactorization) so the context is current, then
    invalidates; the next replay re-syncs from the surgically updated
    context at its new width.
    """

    def __init__(
        self, solver: "MIBSolver", sim: NetworkSimulator, g: _LaneGroup
    ) -> None:
        self.g = g
        self.trace = solver._fused_trace(sim)
        self._n_iter = self.trace.segment_index(ITERATION_KERNELS)
        self.run_state = FusedBatchRun(self.trace)

    def run(self, *, check: bool) -> SimulationStats:
        count = None if check else self._n_iter
        return self.trace.replay_fused_batch(
            self.run_state, self.g.ctx, self.g.streams, count
        )

    def read_view(self, view) -> np.ndarray:
        if not self.run_state.valid:
            return self.g.ctx.read_vector(view)
        return self.run_state.read_view(self.g.ctx, view)

    def flush(self) -> None:
        if self.run_state.valid:
            self.run_state.sync_out(self.g.ctx)

    def invalidate(self) -> None:
        self.run_state.invalidate()


class MIBSolver:
    """Pattern-specific compiled QP solver on the MIB architecture.

    Parameters
    ----------
    problem:
        The QP (its *pattern* drives compilation; values stream in).
    variant:
        ``"direct"`` or ``"indirect"``.
    c:
        Network width (16 and 32 are the paper's prototypes).
    settings:
        ADMM settings shared with the algorithmic reference.
    multi_issue / prefetch:
        Scheduler features (exposed for the ablation benchmarks).
    cache:
        Optional shared :class:`~repro.compiler.ScheduleCache`.  On a
        key hit (same sparsity pattern + configuration) construction
        skips lowering and scheduling entirely and restores the
        compiled kernels from the cached artifact; ``cache_hit``
        records which path ran.  Instances rebound with
        :meth:`update_values` never recompile, so they hit the cache
        by construction.
    execution:
        How the network-executed paths run kernels: ``"replay"`` (the
        default) validates each schedule once, lowers it to a
        :class:`~repro.arch.trace.CompiledTrace` and re-executes the
        vectorized trace on every invocation; ``"interpret"`` runs the
        cycle-by-cycle oracle interpreter every time; ``"fused"``
        additionally lowers the whole ADMM iteration into one
        :class:`~repro.arch.fusion.FusedTrace` so
        :meth:`solve_on_network` and :meth:`solve_batch` replay an
        entire iteration per host dispatch.  All three are
        bit-identical; non-iteration kernels run as ``"replay"`` under
        ``"fused"``.
    """

    # Super-pipelining model (paper future work): one extra register
    # stage per datapath stage roughly doubles the commit latency and
    # raises the achievable clock by ~40%.
    SUPER_PIPELINE_CLOCK_GAIN = 1.4

    # Register-file depth of the network-execution simulator (deep
    # enough for the prefetch scratch region at 1 << 22).
    SIM_DEPTH = 1 << 24

    def __init__(
        self,
        problem: QPProblem,
        *,
        variant: str = "direct",
        c: int = 32,
        settings: Settings | None = None,
        multi_issue: bool = True,
        prefetch: bool = True,
        ordering: str = "amd",
        lower_method: str = "column",
        super_pipelined: bool = False,
        cache: ScheduleCache | None = None,
        execution: str = "replay",
        array_backend="auto",
    ) -> None:
        if execution not in ("replay", "interpret", "fused"):
            raise ValueError(
                "execution must be 'replay', 'interpret' or 'fused', "
                f"got {execution!r}"
            )
        self.problem = problem
        self.variant = variant
        self.c = c
        self.execution = execution
        # Construction-time Ruiz scaling applies the equilibration
        # iteratively, which can differ in the last ulp from the
        # one-shot rescale update_values performs; the delta bind may
        # only skip matrix work once the scaled state has
        # update_values provenance.
        self._delta_bindable = False
        # Resolved once: forcing an unavailable accelerator fails here,
        # at configuration time, not mid-solve.
        self.backend_policy = BackendPolicy.resolve(array_backend)
        self._xp_seq = self.backend_policy.sequential()
        self._sim: NetworkSimulator | None = None
        self._traces: dict[str, CompiledTrace] = {}
        self._trace_stamps: dict[str, dict] = {}
        self._fused: FusedTrace | None = None
        self._fusion_stamps: dict[str, dict] = {}
        self._stamps_dirty = False
        self._batch_maps_cache: _BatchMaps | None = None
        self.super_pipelined = super_pipelined
        self.clock_hz = clock_frequency_hz(c)
        extra_latency = 0
        if super_pipelined:
            from ..arch import Butterfly

            extra_latency = Butterfly(c).latency  # doubled pipeline depth
            self.clock_hz *= self.SUPER_PIPELINE_CLOCK_GAIN
        self.options = ScheduleOptions(
            multi_issue=multi_issue,
            prefetch=prefetch,
            extra_latency=extra_latency,
        )
        self.reference = OSQPSolver(
            problem,
            variant=variant,
            settings=settings,
            ordering=ordering,
            lower_method=lower_method,
        )
        self.builder = KernelBuilder(c, depth=1 << 24)
        self.kernels = _CompiledKernels()
        self.cache = cache
        self.cache_key: str | None = None
        self.cache_hit = False
        t0 = time.perf_counter()
        if cache is not None:
            self.cache_key = cache.key_for(
                problem,
                variant=variant,
                c=c,
                options=self.options,
                ordering=ordering,
                lower_method=lower_method,
                settings=self.reference.settings,
            )
            artifact = cache.get(self.cache_key)
            if artifact is not None:
                try:
                    self._restore_compiled(artifact)
                    self.cache_hit = True
                except Exception:
                    # A stale or inapplicable artifact degrades to a
                    # plain recompile, never a failure.
                    cache.stats.restore_errors += 1
                    self.builder = KernelBuilder(c, depth=1 << 24)
                    self.kernels = _CompiledKernels()
        if not self.cache_hit:
            if variant == "direct":
                self._compile_direct()
            else:
                self._compile_indirect()
            self._compile_vector_kernels()
            if variant == "direct":
                self._compile_network_iteration()
            if cache is not None:
                cache.put(self.cache_key, self._to_artifact(self.cache_key))
        self.compile_seconds = time.perf_counter() - t0

    # ------------------------------------------------------------------
    # compilation cache
    # ------------------------------------------------------------------
    def _restore_compiled(self, artifact: CompiledArtifact) -> None:
        """Rebuild the compiled state from a cached artifact.

        Replays the register-file allocations (so the schedules'
        absolute locations resolve to the same regions), installs the
        schedules, and recomputes the cheap pattern-derived views the
        network-execution paths consult.  No lowering, no scheduling.
        """
        for slot in artifact.vectors:
            view = self.builder.alloc.allocate(
                slot.name, slot.length, rotation=slot.rotation
            )
            if view.base != slot.base:
                raise ValueError(
                    f"allocator layout drift restoring {slot.name!r}"
                )
        self.kernels.schedules.update(artifact.schedules)
        self._trace_stamps = dict(artifact.traces)
        self._fusion_stamps = dict(artifact.fusion)
        sp = self.reference.scaling.scaled
        self._a_view = row_major_view(sp.a)
        self._p_view = row_major_view(sp.p_full)
        if self.variant == "direct":
            kkt = self.reference.kkt_solver
            assert isinstance(kkt, DirectKKTSolver)
            self._kkt_dim = kkt.dim
            self._perm = kkt.perm

    def _to_artifact(self, key: str) -> CompiledArtifact:
        """Snapshot the compiled state for the cache."""
        return CompiledArtifact(
            key=key,
            schedules=dict(self.kernels.schedules),
            vectors=[
                VectorSlot(v.name, v.length, v.rotation, v.base)
                for v in self.builder.alloc.views()
            ],
            traces=dict(self._trace_stamps),
            fusion=dict(self._fusion_stamps),
        )

    # ------------------------------------------------------------------
    # trace-compiled execution
    # ------------------------------------------------------------------
    def _network_sim(self, *, reset: bool = True) -> NetworkSimulator:
        """The shared lazily-created simulator.

        One ``SIM_DEPTH``-deep register file is allocated per solver
        and reused across every network-execution entry point; each
        entry resets the allocator-managed region instead of paying a
        fresh multi-GiB allocation per call.
        """
        if self._sim is None:
            self._sim = NetworkSimulator(self.c, depth=self.SIM_DEPTH)
        elif reset:
            self._sim.reset(self.builder.alloc.used_rows)
        return self._sim

    def _trace(self, name: str, sim: NetworkSimulator) -> CompiledTrace:
        """The kernel's compiled trace (validate-and-lower on first use).

        A cached validation stamp (restored with the artifact) proves
        this exact schedule already passed hazard validation for this
        configuration, so re-lowering skips the hazard bookkeeping.
        Values never invalidate a trace: streamed coefficients rebind
        at every replay, which is what makes :meth:`update_values` and
        ρ refactorization free of recompilation.
        """
        trace = self._traces.get(name)
        if trace is None:
            stamp = self._trace_stamps.get(name)
            validated = stamp_matches(
                stamp,
                c=self.c,
                depth=sim.rf.depth,
                extra_latency=sim.extra_latency,
            )
            trace = compile_trace(
                self.kernels.schedules[name].slots,
                c=self.c,
                depth=sim.rf.depth,
                extra_latency=sim.extra_latency,
                validate=not validated,
                name=name,
            )
            self._traces[name] = trace
            if not validated:
                self._trace_stamps[name] = trace.summary()
                self._stamps_dirty = True
        return trace

    def _run_kernel(
        self, sim: NetworkSimulator, name: str, streams: StreamBuffers
    ) -> SimulationStats:
        """Execute one compiled kernel in the configured mode.

        ``"fused"`` covers the iteration loop body only; standalone
        kernel invocations (``factor``, the validation paths) run as
        trace replays under it.
        """
        if self.execution == "interpret":
            return sim.run(self.kernels.schedules[name].slots, streams)
        return self._trace(name, sim).replay(sim, streams, xp=self._xp_seq)

    def _fused_trace(self, sim: NetworkSimulator) -> FusedTrace:
        """The whole-iteration fused trace (fuse on first use).

        A cached fusion stamp (restored with the artifact) proves this
        exact kernel set already produced a verified buffer-reuse plan
        for this configuration, so a warm solver re-fuses with the
        overlap verification skipped.  Like kernel traces, values never
        invalidate a fusion: streams rebind at sync-in.
        """
        fused = self._fused
        if fused is None:
            names = ITERATION_KERNELS + CHECK_KERNELS
            traces = [self._trace(n, sim) for n in names]
            verified = fusion_stamp_matches(
                self._fusion_stamps.get("iteration"),
                c=self.c,
                depth=sim.rf.depth,
                latency=sim.bf.latency + sim.extra_latency,
                segments=names,
            )
            fused = fuse_iteration(
                traces, name="iteration", verify=not verified
            )
            self._fused = fused
            if not verified:
                self._fusion_stamps["iteration"] = fused.summary()
                self._stamps_dirty = True
        return fused

    def _flush_stamps(self) -> None:
        """Persist freshly recorded validation/fusion stamps.

        Lowering records stamps in memory only; the solve/compile entry
        points flush them here so one entry point costs at most one
        artifact write, however many traces it lowered.  Read-only
        probes (:meth:`iteration_crossings`) never flush: observability
        must not mutate a shared cache's store accounting.
        """
        if (
            self._stamps_dirty
            and self.cache is not None
            and self.cache_key is not None
        ):
            self.cache.put(self.cache_key, self._to_artifact(self.cache_key))
        self._stamps_dirty = False

    def _iteration_engine(self, sim: NetworkSimulator, streams):
        """The sequential ADMM loop body for the configured mode."""
        if self.execution == "fused":
            return _FusedIterationEngine(self, sim, streams)
        return _ReplayIterationEngine(self, sim, streams)

    def _batch_iteration_engine(self, sim: NetworkSimulator, g: _LaneGroup):
        """The batched ADMM loop body for the configured mode."""
        if self.execution == "fused":
            return _FusedBatchIterationEngine(self, sim, g)
        return _ReplayBatchIterationEngine(self, sim, g)

    def iteration_crossings(self, *, check: bool = False, xp=None) -> int:
        """Steady-state host→backend crossings of one network-executed
        ADMM iteration in the configured mode (``check`` adds the
        residual-product kernels).

        The observability counterpart of :meth:`iteration_cycles`:
        crossings are host dispatch overhead, not simulated time, and
        are what ``execution="fused"`` collapses.  ``xp`` selects the
        backend accounted for (default: the sequential backend the
        policy resolved) — host backends count numpy call dispatches,
        device backends count genuine host→device transfers.  A
        read-only probe: any stamps recorded while lowering stay in
        memory until the next solve/compile entry point flushes them.
        """
        if xp is None:
            xp = self._xp_seq
        names = ITERATION_KERNELS + (CHECK_KERNELS if check else ())
        if self.variant != "direct":
            names = ("admm_vector",)
        if self.execution == "interpret":
            return sum(self.kernels.schedules[n].n_ops for n in names)
        sim = self._network_sim(reset=False)
        if self.execution == "fused" and self.variant == "direct":
            return self._fused_trace(sim).iteration_crossings(
                len(names), xp=xp
            )
        return sum(self._trace(n, sim).crossings_for(xp) for n in names)

    def compile_traces(
        self, names: list[str] | None = None
    ) -> dict[str, dict]:
        """Eagerly validate-and-lower kernels to replay traces.

        Returns each trace's layout summary (the cache stamp).  Useful
        to front-load trace compilation before timed iteration loops.
        """
        sim = self._network_sim(reset=False)
        summaries = {
            name: self._trace(name, sim).summary()
            for name in (names or list(self.kernels.schedules))
        }
        self._flush_stamps()
        return summaries

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def _schedule(self, name: str, ops) -> Schedule:
        sched = schedule_program(
            NetworkProgram(name, list(ops)), self.c, self.options
        )
        self.kernels.schedules[name] = sched
        return sched

    def _compile_direct(self) -> None:
        kkt = self.reference.kkt_solver
        assert isinstance(kkt, DirectKKTSolver)
        sym = kkt.symbolic
        dim = kkt.dim
        kb = self.builder
        self._kkt_dim = dim
        self._perm = kkt.perm
        bx = kb.vector("kkt_b", dim)  # incoming right-hand side
        px = kb.vector("kkt_x", dim)  # permuted solve buffer
        fy = kb.vector("factor_y", dim)
        fd = kb.vector("factor_d", dim)
        fdinv = kb.vector("factor_dinv", dim)

        # Numeric refactorization (runs at setup and on every ρ update).
        self._schedule(
            "factor",
            kb.factorization(
                sym, kkt._permuted_upper, y=fy, d=fd, dinv=fdinv, k_stream="K"
            ),
        )
        # The KKT triangular solve pipeline of Listing 1:
        # permutate -> L_solve -> D_solve -> Lt_solve -> inverse_permutate.
        lower = (
            kb.lsolve_columns
            if self.reference.kkt_solver.lower_method == "column"
            else kb.lsolve_rows
        )
        perm = self._perm.perm
        solve_ops = (
            kb.gather(px, list(range(dim)), bx, perm.tolist(), tag="permutate")
            + lower(sym, px, "L")
            + kb.dsolve(px, "Dinv")
            + kb.ltsolve(sym, px, "L")
            + kb.gather(bx, perm.tolist(), px, list(range(dim)), tag="inv_permutate")
        )
        self._schedule("kkt_solve", solve_ops)

    def _compile_indirect(self) -> None:
        kkt = self.reference.kkt_solver
        assert isinstance(kkt, IndirectKKTSolver)
        sp = self.reference.scaling.scaled
        kb = self.builder
        n, m = sp.n, sp.m
        self._a_view = row_major_view(sp.a)
        self._p_view = row_major_view(sp.p_full)
        v = kb.vector("cg_v", n)
        sv = kb.vector("cg_sv", n)
        pv = kb.vector("cg_pv", n)
        atv = kb.vector("cg_atv", n)
        av = kb.vector("cg_av", m)
        # One application of S = P + σI + Aᵀ·diag(ρ)·A (Algorithm 2's
        # work horse): MAC for A and P, column elimination for Aᵀ.
        ops = (
            kb.spmv(self._a_view, v, av, "A", tag="spmv_A")
            + kb.stream_mul(av, av, "rho")
            + kb.spmv_transpose(self._a_view, av, atv, "A", tag="spmv_At")
            + kb.spmv(self._p_view, v, pv, "P", tag="spmv_P")
            + kb.ew_add(sv, pv, atv)
            + kb.axpby(sv, sv, v, 1.0, self.reference.settings.sigma)
        )
        self._schedule("apply_s", ops)
        # CG vector updates per iteration (λ, x, r, d, μ, p lines).
        r = kb.vector("cg_r", n)
        d = kb.vector("cg_d", n)
        p = kb.vector("cg_p", n)
        cg_vec = (
            kb.axpby(v, v, p, 1.0, 1.0)  # x += λp (λ folded host-side)
            + kb.axpby(r, r, sv, 1.0, 1.0)  # r += λSp
            + kb.stream_mul(d, r, "Minv")  # d = M⁻¹r
            + kb.axpby(p, d, p, -1.0, 1.0)  # p = −d + μp
        )
        self._schedule("cg_vector", cg_vec)

    def _compile_vector_kernels(self) -> None:
        """The per-ADMM-iteration vector work (Algorithm 1 lines 4-7)."""
        kb = self.builder
        sp = self.reference.scaling.scaled
        n, m = sp.n, sp.m
        alpha = self.reference.settings.alpha
        x = kb.vector("adm_x", n)
        xt = kb.vector("adm_xt", n)
        z = kb.vector("adm_z", m)
        zt = kb.vector("adm_zt", m)
        y = kb.vector("adm_y", m)
        w = kb.vector("adm_w", m)
        tmp_m = kb.vector("adm_tmp_m", m)
        rhs_top = kb.vector("adm_rhs_top", n)
        ops = (
            # rhs build: σx − q ; z − y/ρ
            kb.ew_scale(rhs_top, x, self.reference.settings.sigma)
            + kb.stream_axpy(rhs_top, rhs_top, "q", -1.0)
            + kb.stream_mul(tmp_m, y, "rho_inv")
            + kb.ew_sub(tmp_m, z, tmp_m)
            # relaxation and projection
            + kb.axpby(x, xt, x, alpha, 1.0 - alpha)
            + kb.axpby(w, zt, z, alpha, 1.0 - alpha)
            + kb.stream_mul(tmp_m, y, "rho_inv")
            + kb.ew_add(tmp_m, w, tmp_m)
            + kb.clip(z, tmp_m, "bounds", length=m)
            # dual update: y += ρ(w − z)
            + kb.ew_sub(tmp_m, w, z)
            + kb.stream_mul(tmp_m, tmp_m, "rho")
            + kb.ew_add(y, y, tmp_m)
        )
        self._schedule("admm_vector", ops)

        # Residual computation (every check_interval iterations):
        # A·x, P·x, Aᵀ·y plus norms.
        if self.variant == "direct":
            self._a_view = row_major_view(sp.a)
            self._p_view = row_major_view(sp.p_full)
        ax = kb.vector("res_ax", m)
        px_v = kb.vector("res_px", n)
        aty = kb.vector("res_aty", n)
        res_ops = (
            kb.spmv(self._a_view, x, ax, "A", tag="res_A")
            + kb.spmv(self._p_view, x, px_v, "P", tag="res_P")
            + kb.spmv_transpose(self._a_view, y, aty, "A", tag="res_At")
        )
        self._schedule("residuals", res_ops)

    def _compile_network_iteration(self) -> None:
        """Phase-split per-iteration kernels for the fully network-
        executed solve (:meth:`solve_on_network`).

        ``admm_vector`` prices the iteration's vector work for the
        cycle model; these kernels order the same work around the KKT
        solve exactly as Algorithm 1 requires: ``iter_pre`` builds the
        right-hand side into the solve buffer, ``iter_post`` applies
        relaxation, projection and the dual update from the solution.
        """
        kb = self.builder
        sp = self.reference.scaling.scaled
        n, m = sp.n, sp.m
        alpha = self.reference.settings.alpha
        alloc = kb.alloc
        x, xt = alloc.get("adm_x"), alloc.get("adm_xt")
        z, zt = alloc.get("adm_z"), alloc.get("adm_zt")
        y, w = alloc.get("adm_y"), alloc.get("adm_w")
        tmp_m = alloc.get("adm_tmp_m")
        rhs_top = alloc.get("adm_rhs_top")
        tmp2 = kb.vector("adm_tmp2_m", m)
        bx = alloc.get("kkt_b")

        pre = (
            kb.ew_scale(rhs_top, x, self.reference.settings.sigma)
            + kb.stream_axpy(rhs_top, rhs_top, "q", -1.0)
            + kb.stream_mul(tmp_m, y, "rho_inv")
            + kb.ew_sub(tmp_m, z, tmp_m)
            + kb.gather(bx, list(range(n)), rhs_top, list(range(n)))
            + kb.gather(bx, list(range(n, n + m)), tmp_m, list(range(m)))
        )
        self._schedule("iter_pre", pre)

        post = (
            kb.gather(xt, list(range(n)), bx, list(range(n)))
            + kb.gather(tmp_m, list(range(m)), bx, list(range(n, n + m)))
            + kb.ew_sub(tmp2, tmp_m, y)  # ν − y
            + kb.stream_mul(tmp2, tmp2, "rho_inv")
            + kb.ew_add(zt, z, tmp2)  # z̃ = z + (ν − y)/ρ
            + kb.axpby(x, xt, x, alpha, 1.0 - alpha)
            + kb.axpby(w, zt, z, alpha, 1.0 - alpha)
            + kb.stream_mul(tmp2, y, "rho_inv")
            + kb.ew_add(tmp2, w, tmp2)
            + kb.clip(z, tmp2, "bounds", length=m)  # projection Π
            + kb.ew_sub(tmp2, w, z)
            + kb.stream_mul(tmp2, tmp2, "rho")
            + kb.ew_add(y, y, tmp2)  # dual update
        )
        self._schedule("iter_post", post)

    # ------------------------------------------------------------------
    def update_values(self, problem: QPProblem) -> None:
        """Bind a new numeric instance of the same sparsity pattern.

        No recompilation: the compiled schedules reference stream
        positions, so only the algorithmic state (scaled data, KKT
        values, factorization numbers) refreshes — the paper's
        amortization mechanism, priced at one ``factor`` kernel run in
        the direct variant.
        """
        self.reference.update_values(problem)
        self.problem = problem
        self._delta_bindable = True

    # ------------------------------------------------------------------
    def bind_values(self, problem: QPProblem) -> str:
        """Bind a same-pattern instance, taking the delta fast path
        when only vectors changed.

        Returns ``"delta"`` when ``A.data`` and ``P.data`` (upper
        triangle) are bitwise equal to the bound instance's — then the
        matrix rescale, KKT assembly and numeric refactorization are
        all skipped and only ``q``/``l``/``u`` rescale (the streaming
        MPC / homotopy-path shape: new measured state, new penalty,
        same plant).  Returns ``"full"`` after an ordinary
        :meth:`update_values` otherwise.  Both paths are bitwise
        equivalent: the skipped recomputation is a deterministic
        function of inputs that did not change.
        """
        cur = self.problem
        if (
            self._delta_bindable
            and problem.a.pattern_equal(cur.a)
            and problem.p_upper.pattern_equal(cur.p_upper)
            and np.array_equal(problem.a.data, cur.a.data)
            and np.array_equal(problem.p_upper.data, cur.p_upper.data)
        ):
            self.reference.update_vectors(problem)
            self.problem = problem
            return "delta"
        self.update_values(problem)
        return "full"

    # ------------------------------------------------------------------
    def bind_rho(self, rho: float) -> bool:
        """Install a carried ρ (session state) on the bound instance.

        The session equivalent of the ρ-reset half of
        :meth:`bind_instance`: the per-constraint vector is rebuilt
        under the *current* bounds' equality/loose masks, but the KKT
        refactorization only runs when that vector actually changed
        bitwise — in the steady state of a parametric stream (same ρ,
        same constraint classes) it never does.  Returns ``True`` when
        the system refactorized.
        """
        ref = self.reference
        ref.rho = float(rho)
        new_vec = ref._build_rho_vec(ref.rho)
        changed = not np.array_equal(new_vec, ref.rho_vec)
        ref.rho_vec = new_vec
        if changed:
            ref.kkt_solver.update_rho(new_vec)
        return changed

    # ------------------------------------------------------------------
    # cycle accounting
    # ------------------------------------------------------------------
    def data_load_cycles(self) -> int:
        """Initial streaming of problem data into HBM-side buffers."""
        sp = self.reference.scaling.scaled
        words = sp.a.nnz + sp.p_full.nnz + 2 * sp.m + 2 * sp.n
        return -(-words // self.c)

    def iteration_cycles(self) -> int:
        """Cycles of one ADMM iteration (excluding residual checks)."""
        cycles = self.kernels.cycles("admm_vector")
        if self.variant == "direct":
            cycles += self.kernels.cycles("kkt_solve")
        return cycles

    def solve(
        self, *, x0: np.ndarray | None = None, y0: np.ndarray | None = None
    ) -> MIBSolveReport:
        """Solve the bound problem instance with exact cycle accounting.

        The algorithm trace (iterations, ρ updates, CG iterations,
        residual checks) comes from the algorithmic reference — the
        hardware runs the identical algorithm — and each event is
        priced at its kernel's scheduled cycle count.  ``x0``/``y0``
        warm-start the iteration (closed-loop MPC re-solves).
        """
        result = self.reference.solve(x0=x0, y0=y0)
        st = self.reference.settings
        iters = result.iterations
        checks = iters // st.check_interval + 1
        invocations: dict[str, int] = {"admm_vector": iters, "residuals": checks}
        cycles = self.data_load_cycles()
        cycles += iters * self.kernels.cycles("admm_vector")
        cycles += checks * self.kernels.cycles("residuals")
        if self.variant == "direct":
            invocations["kkt_solve"] = iters
            invocations["factor"] = 1 + result.rho_updates
            cycles += iters * self.kernels.cycles("kkt_solve")
            cycles += (1 + result.rho_updates) * self.kernels.cycles("factor")
        else:
            kkt = self.reference.kkt_solver
            assert isinstance(kkt, IndirectKKTSolver)
            cg_iters = kkt.diagnostics.total_iterations
            cg_calls = kkt.diagnostics.calls
            invocations["apply_s"] = cg_iters + cg_calls
            invocations["cg_vector"] = cg_iters
            cycles += (cg_iters + cg_calls) * self.kernels.cycles("apply_s")
            cycles += cg_iters * self.kernels.cycles("cg_vector")
        transfer_bytes = 4 * (
            self.problem.nnz + 2 * self.problem.n + 4 * self.problem.m
        )
        transfer = 2 * PCIE_LATENCY + transfer_bytes / PCIE_BANDWIDTH
        runtime = cycles / self.clock_hz + transfer
        return MIBSolveReport(
            result=result,
            cycles=cycles,
            runtime_seconds=runtime,
            clock_hz=self.clock_hz,
            kernel_cycles={
                k: s.cycles for k, s in self.kernels.schedules.items()
            },
            kernel_invocations=invocations,
            transfer_seconds=transfer,
        )

    # ------------------------------------------------------------------
    # network-executed validation paths
    # ------------------------------------------------------------------
    def solve_kkt_on_network(self, rhs: np.ndarray) -> np.ndarray:
        """Execute the full KKT solve pipeline on the simulator
        (direct variant) and return the solution."""
        if self.variant != "direct":
            raise ValueError("KKT network solve is a direct-variant path")
        kkt = self.reference.kkt_solver
        assert isinstance(kkt, DirectKKTSolver)
        dim = self._kkt_dim
        if rhs.shape != (dim,):
            raise ValueError("rhs dimension mismatch")
        sim = self._network_sim()
        streams = StreamBuffers()
        streams.bind("K", kkt._permuted_upper.data)
        sim.rf.load_vector(self.builder.alloc.get("kkt_b"), rhs)
        # Numeric factorization on the network, then bind its outputs.
        self._run_kernel(sim, "factor", streams)
        sym = kkt.symbolic
        streams.bind(
            "L", np.array([sim.lbuf.get(p, 0.0) for p in range(sym.l_nnz)])
        )
        streams.bind(
            "Dinv", sim.rf.read_vector(self.builder.alloc.get("factor_dinv"))
        )
        self._run_kernel(sim, "kkt_solve", streams)
        return sim.rf.read_vector(self.builder.alloc.get("kkt_b"))

    def solve_on_network(
        self, *, max_iter: int | None = None
    ) -> "MIBNetworkSolveReport":
        """Run the *entire* ADMM solve through the cycle-level simulator
        (direct variant).

        Every operation of Algorithm 1 executes as scheduled network
        instructions: the numeric factorization, the per-iteration
        right-hand-side build, the permuted triangular solves, the
        relaxation/projection/dual updates, the residual matrix
        products, and the on-network refactorization when ρ adapts.
        The host only performs the Table-I ``norm_inf`` reductions for
        termination and the ρ control-flow decision — mirroring the
        prototype, whose host involvement is limited to start/finish
        transfers.

        Intended for validation at small problem sizes (the Python
        simulator executes every node of every cycle); :meth:`solve`
        is the fast cycle-priced path.
        """
        if self.variant != "direct":
            raise ValueError("solve_on_network supports the direct variant")
        st = self.reference.settings
        sc = self.reference.scaling
        sp = sc.scaled
        ks = self.reference.kkt_solver
        assert isinstance(ks, DirectKKTSolver)
        n, m = sp.n, sp.m
        max_iter = max_iter or st.max_iter

        sim = self._network_sim()
        streams = StreamBuffers()
        streams.bind("q", sp.q)
        streams.bind("A", sp.a.data)
        streams.bind("P", sp.p_full.data)
        streams.bind("bounds", np.concatenate([sp.l, sp.u]))
        rho = self.reference.rho
        rho_vec = self.reference.rho_vec.copy()
        sym = ks.symbolic
        alloc = self.builder.alloc
        total_cycles = 0
        total_crossings = 0
        rho_updates = 0
        engine = self._iteration_engine(sim, streams)

        def bind_rho() -> None:
            streams.bind("rho", rho_vec)
            streams.bind("rho_inv", 1.0 / rho_vec)

        def refactor() -> int:
            nonlocal total_crossings
            # The factor kernel runs outside the fused iteration: flush
            # the fused state to the image first, and invalidate after
            # so the next iteration re-syncs against the rebound
            # L/Dinv/rho streams.
            engine.flush()
            streams.bind("K", ks._permuted_upper.data)
            stats = self._run_kernel(sim, "factor", streams)
            streams.bind(
                "L",
                np.array([sim.lbuf.get(p, 0.0) for p in range(sym.l_nnz)]),
            )
            streams.bind(
                "Dinv", sim.rf.read_vector(alloc.get("factor_dinv"))
            )
            engine.invalidate()
            total_crossings += stats.host_crossings
            return stats.cycles

        bind_rho()
        total_cycles += self.data_load_cycles()
        total_cycles += refactor()

        status = SolverStatus.MAX_ITERATIONS
        prim_res = dual_res = float("inf")
        prim_cert: np.ndarray | None = None
        dual_cert: np.ndarray | None = None
        iteration = 0
        for iteration in range(1, max_iter + 1):
            check = (
                iteration % st.check_interval == 0 or iteration == max_iter
            )
            if check:
                # Previous-iteration iterates for the δx/δy certificates.
                x_prev = engine.read_view(alloc.get("adm_x"))
                y_prev = engine.read_view(alloc.get("adm_y"))
            stats = engine.run(check=check)
            total_cycles += stats.cycles
            total_crossings += stats.host_crossings
            if not check:
                continue
            ax = engine.read_view(alloc.get("res_ax"))
            px = engine.read_view(alloc.get("res_px"))
            aty = engine.read_view(alloc.get("res_aty"))
            z = engine.read_view(alloc.get("adm_z"))
            prim_res, dual_res, eps_prim, eps_dual = residuals_from_products(
                sc, st, ax=ax, px=px, aty=aty, z=z
            )
            if prim_res <= eps_prim and dual_res <= eps_dual:
                status = SolverStatus.SOLVED
                break
            dy = engine.read_view(alloc.get("adm_y")) - y_prev
            if self.reference._primal_infeasible(dy):
                status = SolverStatus.PRIMAL_INFEASIBLE
                prim_cert = sc.e * dy / sc.c
                break
            dx = engine.read_view(alloc.get("adm_x")) - x_prev
            if self.reference._dual_infeasible(dx):
                status = SolverStatus.DUAL_INFEASIBLE
                dual_cert = sc.d * dx
                break
            if (
                st.adaptive_rho
                and iteration % st.adaptive_rho_interval == 0
                and iteration < max_iter
            ):
                ratio = (prim_res / max(eps_prim, 1e-12)) / max(
                    dual_res / max(eps_dual, 1e-12), 1e-12
                )
                new_rho = float(
                    np.clip(rho * np.sqrt(ratio), st.rho_min, st.rho_max)
                )
                if (
                    new_rho > rho * st.adaptive_rho_tolerance
                    or new_rho < rho / st.adaptive_rho_tolerance
                ):
                    rho = new_rho
                    self.reference.rho = new_rho
                    rho_vec = self.reference._build_rho_vec(new_rho)
                    ks.update_rho(rho_vec)
                    bind_rho()
                    total_cycles += refactor()
                    rho_updates += 1

        x = engine.read_view(alloc.get("adm_x"))
        z = engine.read_view(alloc.get("adm_z"))
        y = engine.read_view(alloc.get("adm_y"))
        self._flush_stamps()
        return MIBNetworkSolveReport(
            status=status,
            x=sc.unscale_x(x),
            z=sc.unscale_z(z),
            y=sc.unscale_y(y),
            iterations=iteration,
            cycles=total_cycles,
            primal_residual=prim_res,
            dual_residual=dual_res,
            rho_updates=rho_updates,
            objective=self.problem.objective(sc.unscale_x(x)),
            primal_infeasibility_certificate=prim_cert,
            dual_infeasibility_certificate=dual_cert,
            host_crossings=total_crossings,
        )

    def bind_instance(
        self, problem: QPProblem, *, rho0: float | None = None
    ) -> None:
        """Rebind this compiled solver to a same-pattern instance and
        reset ρ to ``rho0`` (default: the configured initial value).

        This is the sequential equivalent of occupying one lane of
        :meth:`solve_batch`: batch lanes all start from the pass's
        ``rho0`` regardless of where a previous solve's adaptation
        ended, so the differential oracle for lane *i* is
        ``bind_instance(problems[i], rho0=...)`` with the pass's
        ``rho0`` followed by :meth:`solve_on_network` on the *same*
        solver (a fresh solver would compute its own Ruiz scaling and
        diverge bitwise).
        """
        self.update_values(problem)
        ref = self.reference
        ref.rho = ref.settings.rho if rho0 is None else float(rho0)
        ref.rho_vec = ref._build_rho_vec(ref.rho)
        ref.kkt_solver.update_rho(ref.rho_vec)

    # ------------------------------------------------------------------
    # batched lockstep solve
    # ------------------------------------------------------------------
    def _batch_maps(self) -> _BatchMaps:
        """Pattern-derived gathers/factors for :meth:`solve_batch`.

        The two data maps are built by *index probing*: run an
        ``arange`` payload through the exact derivation chain the
        scalar path uses (symmetrize → permute → upper-triangle, all
        value-preserving stable gathers) and read the resulting data as
        source positions.
        """
        if self._batch_maps_cache is not None:
            return self._batch_maps_cache
        sc = self.reference.scaling
        sp = sc.scaled
        ks = self.reference.kkt_solver
        assert isinstance(ks, DirectKKTSolver)
        kkt = ks.kkt
        pu = sp.p_upper
        probe = CSCMatrix(
            pu.shape,
            pu.indptr,
            pu.indices,
            np.arange(pu.nnz, dtype=np.float64),
            check=False,
        )
        pf_map = probe.symmetrize_from_upper().data.astype(np.int64)
        kmat = kkt.matrix
        kprobe = CSCMatrix(
            kmat.shape,
            kmat.indptr,
            kmat.indices,
            np.arange(kmat.nnz, dtype=np.float64),
            check=False,
        )
        permuted = ks.perm.permute_symmetric(
            kprobe.symmetrize_from_upper()
        ).upper_triangle()
        if not permuted.pattern_equal(ks._permuted_upper):
            raise AssertionError("permuted KKT probe pattern drift")
        pu_rows, pu_cols, _ = pu.to_coo()
        maps = _BatchMaps(
            qfac=sc.c * sc.d,
            a_fac=sc.e[sp.a.indices] * sc.d[sp.a._entry_cols],
            pu_fac=sc.d[pu_rows] * sc.d[pu_cols],
            pf_map=pf_map,
            perm_map=permuted.data.astype(np.int64),
            p_positions=kkt.p_positions,
            p_diag_positions=kkt.p_positions[pu_rows == pu_cols],
            a_positions=kkt.a_positions,
            rho_positions=kkt.rho_positions,
            sigma=kkt.sigma,
            l_nnz=ks.symbolic.l_nnz,
            n=sp.n,
            m=sp.m,
            a_indices=sp.a.indices,
            a_entry_cols=sp.a._entry_cols,
            pf_indices=sp.p_full.indices,
            pf_entry_cols=sp.p_full._entry_cols,
        )
        self._batch_maps_cache = maps
        return maps

    def _lane_rho_vec(
        self, l_s: np.ndarray, u_s: np.ndarray, rho
    ) -> np.ndarray:
        """Per-lane ρ vector from *scaled* bounds, replicating
        ``OSQPSolver._build_rho_vec`` row-wise (1-D or 2-D)."""
        st = self.reference.settings
        rho = np.asarray(rho, dtype=np.float64)[..., None]
        rho_vec = np.broadcast_to(rho, l_s.shape).copy()
        eq = l_s == u_s
        rho_vec[eq] = (rho_vec * st.rho_eq_scale)[eq]
        loose = (l_s <= -OSQP_INFTY) & (u_s >= OSQP_INFTY)
        rho_vec[loose] = _RHO_LOOSE
        return np.clip(rho_vec, st.rho_min, st.rho_max)

    def _apply_batch_rho(
        self, g: _LaneGroup, row: int, new_rho: float
    ) -> None:
        """Install an adapted ρ on one lane (called on size-1 groups
        only; a refactor must follow before the next KKT solve)."""
        maps = self._batch_maps()
        g.rho[row] = new_rho
        rv = self._lane_rho_vec(
            g.arrays["l"][row], g.arrays["u"][row], new_rho
        )
        g.arrays["rho_vec"][row] = rv
        g.arrays["kdata"][row, maps.rho_positions] = -1.0 / rv
        g.streams.bind("rho", g.arrays["rho_vec"])
        g.streams.bind("rho_inv", 1.0 / g.arrays["rho_vec"])
        g.rho_updates[row] += 1

    def solve_batch(
        self,
        problems: list[QPProblem],
        *,
        max_iter: int | None = None,
        rho0: float | None = None,
        progress=None,
        on_lane=None,
    ) -> MIBBatchReport:
        """Solve B same-pattern instances in one lockstep batched pass.

        Every kernel replay executes all live lanes at once over a
        leading batch axis (:meth:`CompiledTrace.replay_batch`); per
        lane, the arithmetic — and therefore every iterate, residual,
        termination decision and cycle count — is bit-identical to
        :meth:`bind_instance` + :meth:`solve_on_network` run
        sequentially for that instance.  Lanes are harvested out of the
        batch as they converge (or certify infeasibility), and a lane
        whose ρ adaptation triggers a refactorization is extracted into
        a solo group that finishes on its own — lockstep never trades
        a lane's answer for batch shape ("no silent wrong answers").

        ``rho0`` is the ρ every lane starts from (default
        ``settings.rho``).  A serving layer passes its warm solver's
        adapted ρ here: the default initial ρ is usually wrong for a
        pattern and forces one adaptation — and therefore one solo
        extraction — per lane, while the adapted value lets lanes
        terminate before the ρ check ever fires, exactly like the warm
        solo path whose ρ persists across ``update_values``.  The
        differential oracle is :meth:`bind_instance` with the same
        ``rho0``.

        ``progress``, when given, is called with a
        :class:`BatchProgress` snapshot at every residual check of a
        multi-lane group (after harvest and ρ handling, so splits land
        at an iteration boundary); it may return lane ids to bail out
        of lockstep into solo groups.  Because the split happens at the
        same point a ρ extraction would, and carries the lane's live
        factorization streams, a bailed lane's iterates *and cycles*
        remain bit-identical to its solo solve.  ``on_lane`` is called
        as ``on_lane(lane_index, report)`` the moment each lane's
        :class:`MIBNetworkSolveReport` is finalized — before slower
        lanes finish — so a serving layer can answer early lanes
        without waiting for the whole pass.
        """
        if self.variant != "direct":
            raise ValueError("solve_batch supports the direct variant")
        if not problems:
            raise ValueError("solve_batch needs at least one problem")
        for pr in problems:
            if not pr.a.pattern_equal(self.problem.a) or not (
                pr.p_upper.pattern_equal(self.problem.p_upper)
            ):
                raise ValueError("solve_batch requires identical patterns")
        st = self.reference.settings
        sc = self.reference.scaling
        maps = self._batch_maps()
        b = len(problems)
        max_iter = max_iter or st.max_iter

        # Scale all lanes with the shared equilibration (one fused
        # factor per entry, replicating update_values bitwise).
        Q = np.stack([np.asarray(pr.q, dtype=np.float64) for pr in problems])
        A = np.stack([pr.a.data for pr in problems])
        PU = np.stack([pr.p_upper.data for pr in problems])
        L = np.stack([np.asarray(pr.l, dtype=np.float64) for pr in problems])
        U = np.stack([np.asarray(pr.u, dtype=np.float64) for pr in problems])
        q_s = maps.qfac * Q
        a_s = A * maps.a_fac
        pu_s = (PU * maps.pu_fac) * sc.c
        pf_s = pu_s[:, maps.pf_map]
        l_s = sc.e * L
        u_s = sc.e * U
        rho = np.full(
            b, st.rho if rho0 is None else float(rho0), dtype=np.float64
        )
        rho_vec = self._lane_rho_vec(l_s, u_s, rho)

        # Per-lane KKT values: positions not owned by P/A/ρ (the
        # assembler's σ-only diagonal entries) are instance-independent,
        # so the live matrix is a valid template for every lane.
        kdata = np.tile(self.reference.kkt_solver.kkt.matrix.data, (b, 1))
        kdata[:, maps.p_positions] = pu_s
        kdata[:, maps.p_diag_positions] += maps.sigma
        kdata[:, maps.a_positions] = a_s
        kdata[:, maps.rho_positions] = -1.0 / rho_vec

        sim = self._network_sim(reset=False)
        xp = self.backend_policy.for_batch(b)
        ctx = BatchSimState(
            b,
            c=self.c,
            depth=sim.rf.depth,
            latency=sim.bf.latency + sim.extra_latency,
            xp=xp,
        )
        streams = BatchStreamBuffers(b, xp)
        streams.bind("q", q_s)
        streams.bind("A", a_s)
        streams.bind("P", pf_s)
        streams.bind("bounds", np.concatenate([l_s, u_s], axis=1))
        streams.bind("rho", rho_vec)
        streams.bind("rho_inv", 1.0 / rho_vec)
        group = _LaneGroup(
            ids=np.arange(b),
            ctx=ctx,
            streams=streams,
            arrays={
                "q": q_s,
                "a": a_s,
                "pf": pf_s,
                "l": l_s,
                "u": u_s,
                "rho_vec": rho_vec,
                "kdata": kdata,
            },
            rho=rho,
            cycles=np.full(b, self.data_load_cycles(), dtype=np.int64),
            rho_updates=np.zeros(b, dtype=np.int64),
        )
        reports: dict[int, MIBNetworkSolveReport] = {}
        pending = [group]
        while pending:
            self._run_batch_group(
                pending.pop(),
                problems,
                reports,
                pending,
                sim,
                max_iter,
                progress=progress,
                on_lane=on_lane,
            )
        lanes = [reports[i] for i in range(b)]
        cycles = [r.cycles for r in lanes]
        self._flush_stamps()
        return MIBBatchReport(
            lanes=lanes,
            batch=b,
            solo_lanes=sum(r.solo for r in lanes),
            total_cycles=int(sum(cycles)),
            max_cycles=int(max(cycles)),
            bailout_lanes=sum(r.bailed for r in lanes),
            rho0=st.rho if rho0 is None else float(rho0),
        )

    def _run_batch_group(
        self,
        g: _LaneGroup,
        problems: list[QPProblem],
        reports: dict[int, MIBNetworkSolveReport],
        pending: list[_LaneGroup],
        sim: NetworkSimulator,
        max_iter: int,
        *,
        progress=None,
        on_lane=None,
    ) -> None:
        """Advance one lockstep group to completion.

        Mirrors :meth:`solve_on_network` per lane: same kernel order,
        same check schedule, same convergence → primal-infeasibility →
        dual-infeasibility → ρ-adaptation decision order, same cycle
        accounting.
        """
        st = self.reference.settings
        sc = self.reference.scaling
        maps = self._batch_maps()
        alloc = self.builder.alloc
        v_x, v_y, v_z = (
            alloc.get("adm_x"), alloc.get("adm_y"), alloc.get("adm_z")
        )
        v_ax, v_px, v_aty = (
            alloc.get("res_ax"), alloc.get("res_px"), alloc.get("res_aty")
        )

        engine = self._batch_iteration_engine(sim, g)

        def refactor() -> None:
            engine.flush()
            g.streams.bind("K", g.arrays["kdata"][:, maps.perm_map])
            stats = self._trace("factor", sim).replay_batch(
                g.ctx, g.streams
            )
            g.cycles += stats.cycles
            g.crossings += stats.host_crossings
            g.streams.bind("L", g.ctx.lbuf_matrix(maps.l_nnz))
            g.streams.bind(
                "Dinv", g.ctx.read_vector(alloc.get("factor_dinv"))
            )
            engine.invalidate()

        def emit(lane: int, report: MIBNetworkSolveReport) -> None:
            reports[lane] = report
            if on_lane is not None:
                on_lane(lane, report)

        # Covers both the initial factorization (root group) and the
        # post-split ρ refactorization (solo groups: the spawner already
        # installed the new ρ in the value arrays).  Bail-out children
        # skip it: their extracted streams carry the live L/Dinv rows.
        if g.needs_refactor:
            refactor()

        prim = dual = None
        iteration = g.start_iteration
        while g.ids.size and iteration < max_iter:
            iteration += 1
            check = (
                iteration % st.check_interval == 0 or iteration == max_iter
            )
            if check:
                x_prev = engine.read_view(v_x)
                y_prev = engine.read_view(v_y)
            stats = engine.run(check=check)
            g.cycles += stats.cycles
            g.crossings += stats.host_crossings
            if not check:
                continue
            # Flush the fused state before the harvest/split machinery
            # reads and surgically edits the context (no-op per-kernel).
            engine.flush()
            ax = g.ctx.read_vector(v_ax)
            px = g.ctx.read_vector(v_px)
            aty = g.ctx.read_vector(v_aty)
            z = g.ctx.read_vector(v_z)
            prim, dual, ep, ed = residuals_from_products(
                sc, st, ax=ax, px=px, aty=aty, z=z, q=g.arrays["q"]
            )
            x_now = g.ctx.read_vector(v_x)
            y_now = g.ctx.read_vector(v_y)
            keep = np.ones(g.ids.size, dtype=bool)
            for r in range(g.ids.size):
                status = cert_p = cert_d = None
                if prim[r] <= ep[r] and dual[r] <= ed[r]:
                    status = SolverStatus.SOLVED
                else:
                    dy = y_now[r] - y_prev[r]
                    dx = x_now[r] - x_prev[r]
                    a_row = g.arrays["a"][r]
                    if primal_infeasibility(
                        dy,
                        scaling=sc,
                        settings=st,
                        l=g.arrays["l"][r],
                        u=g.arrays["u"][r],
                        a_rmatvec=lambda v, _d=a_row: maps.a_rmatvec(_d, v),
                    ):
                        status = SolverStatus.PRIMAL_INFEASIBLE
                        cert_p = sc.e * dy / sc.c
                    elif dual_infeasibility(
                        dx,
                        scaling=sc,
                        settings=st,
                        l=g.arrays["l"][r],
                        u=g.arrays["u"][r],
                        q=g.arrays["q"][r],
                        p_matvec=lambda v, _d=g.arrays["pf"][r]: (
                            maps.p_matvec(_d, v)
                        ),
                        a_matvec=lambda v, _d=a_row: maps.a_matvec(_d, v),
                    ):
                        status = SolverStatus.DUAL_INFEASIBLE
                        cert_d = sc.d * dx
                if status is None:
                    continue
                lane = int(g.ids[r])
                xr = sc.unscale_x(x_now[r])
                emit(lane, MIBNetworkSolveReport(
                    status=status,
                    x=xr,
                    z=sc.unscale_z(z[r]),
                    y=sc.unscale_y(y_now[r]),
                    iterations=iteration,
                    cycles=int(g.cycles[r]),
                    primal_residual=float(prim[r]),
                    dual_residual=float(dual[r]),
                    rho_updates=int(g.rho_updates[r]),
                    objective=problems[lane].objective(xr),
                    primal_infeasibility_certificate=cert_p,
                    dual_infeasibility_certificate=cert_d,
                    solo=g.solo,
                    bailed=g.bailed,
                    host_crossings=int(g.crossings[r]),
                ))
                keep[r] = False
            if not np.all(keep):
                g.compact(keep)
                engine.invalidate()
                prim, dual, ep, ed = (
                    prim[keep], dual[keep], ep[keep], ed[keep]
                )
                if not g.ids.size:
                    return
            if (
                st.adaptive_rho
                and iteration % st.adaptive_rho_interval == 0
                and iteration < max_iter
            ):
                ratio = (prim / np.maximum(ep, 1e-12)) / np.maximum(
                    dual / np.maximum(ed, 1e-12), 1e-12
                )
                new_rho = np.clip(
                    g.rho * np.sqrt(ratio), st.rho_min, st.rho_max
                )
                trigger = (
                    new_rho > g.rho * st.adaptive_rho_tolerance
                ) | (new_rho < g.rho / st.adaptive_rho_tolerance)
                if np.any(trigger):
                    if g.ids.size == 1:
                        self._apply_batch_rho(g, 0, float(new_rho[0]))
                        refactor()
                    else:
                        # Refactorization drops a lane out of lockstep:
                        # it finishes solo rather than forcing siblings
                        # through a factor they did not trigger.
                        for r in np.flatnonzero(trigger):
                            child = g.extract(
                                int(r), start_iteration=iteration
                            )
                            self._apply_batch_rho(
                                child, 0, float(new_rho[r])
                            )
                            pending.append(child)
                        g.compact(~trigger)
                        engine.invalidate()
                        prim, dual, ep, ed = (
                            prim[~trigger], dual[~trigger],
                            ep[~trigger], ed[~trigger],
                        )
            if (
                progress is not None
                and g.ids.size > 1
                and iteration < max_iter
            ):
                # Bail-out decision point: after harvest and ρ handling
                # so a split lane resumes at a clean iteration boundary
                # with the exact control flow a solo solve would run
                # (splitting before the ρ block would skip this
                # iteration's adaptation check and diverge bitwise).
                tiny = 1e-300
                requested = progress(BatchProgress(
                    iteration=iteration,
                    ids=g.ids.copy(),
                    primal_ratio=prim / np.maximum(ep, tiny),
                    dual_ratio=dual / np.maximum(ed, tiny),
                ))
                if requested:
                    wanted = {int(i) for i in requested}
                    split = np.array(
                        [int(i) in wanted for i in g.ids], dtype=bool
                    )
                    if np.any(split):
                        for r in np.flatnonzero(split):
                            pending.append(g.extract(
                                int(r),
                                start_iteration=iteration,
                                needs_refactor=False,
                                bailed=True,
                            ))
                        g.compact(~split)
                        engine.invalidate()
                        prim, dual, ep, ed = (
                            prim[~split], dual[~split],
                            ep[~split], ed[~split],
                        )
        if g.ids.size:
            # MAX_ITERATIONS leftovers; the forced final check assigned
            # prim/dual for every lane still in the group.
            x_now = g.ctx.read_vector(v_x)
            y_now = g.ctx.read_vector(v_y)
            z = g.ctx.read_vector(v_z)
            for r in range(g.ids.size):
                lane = int(g.ids[r])
                xr = sc.unscale_x(x_now[r])
                emit(lane, MIBNetworkSolveReport(
                    status=SolverStatus.MAX_ITERATIONS,
                    x=xr,
                    z=sc.unscale_z(z[r]),
                    y=sc.unscale_y(y_now[r]),
                    iterations=max_iter,
                    cycles=int(g.cycles[r]),
                    primal_residual=float(prim[r]),
                    dual_residual=float(dual[r]),
                    rho_updates=int(g.rho_updates[r]),
                    objective=problems[lane].objective(xr),
                    solo=g.solo,
                    bailed=g.bailed,
                    host_crossings=int(g.crossings[r]),
                ))

    def solve_reduced_on_network(
        self,
        b: np.ndarray,
        *,
        tol: float = 1e-8,
        max_iter: int = 500,
    ) -> tuple[np.ndarray, int]:
        """PCG on ``S x = b`` with every S-product executed on the
        simulator (indirect-variant validation).

        The CG control flow (the scalar λ/μ updates of Algorithm 2)
        runs host-side as the prototype's sequencer would; the
        matrix-vector work — the entirety of the FLOPs — streams
        through the compiled ``apply_s`` network program on a single
        persistent simulator instance.
        """
        if self.variant != "indirect":
            raise ValueError("reduced-system network solve is indirect-only")
        kkt = self.reference.kkt_solver
        assert isinstance(kkt, IndirectKKTSolver)
        sp = self.reference.scaling.scaled
        n = sp.n
        sim = self._network_sim()
        streams = StreamBuffers()
        streams.bind("A", sp.a.data)
        streams.bind("P", sp.p_full.data)
        streams.bind("rho", self.reference.rho_vec)
        v_view = self.builder.alloc.get("cg_v")
        sv_view = self.builder.alloc.get("cg_sv")

        def apply_s(v: np.ndarray) -> np.ndarray:
            sim.rf.load_vector(v_view, v)
            self._run_kernel(sim, "apply_s", streams)
            return sim.rf.read_vector(sv_view)

        m_inv = kkt._m_inv
        x = np.zeros(n)
        r = apply_s(x) - b
        b_norm = float(np.linalg.norm(b))
        if b_norm == 0.0:
            return x, 0
        d = m_inv * r
        p = -d
        rd = float(r @ d)
        iterations = 0
        while float(np.linalg.norm(r)) >= tol * b_norm and iterations < max_iter:
            sp_vec = apply_s(p)
            lam = rd / float(p @ sp_vec)
            x += lam * p
            r += lam * sp_vec
            d = m_inv * r
            rd_new = float(r @ d)
            p = -d + (rd_new / rd) * p
            rd = rd_new
            iterations += 1
        return x, iterations

    def run_admm_vector_on_network(
        self,
        x: np.ndarray,
        xt: np.ndarray,
        z: np.ndarray,
        zt: np.ndarray,
        y: np.ndarray,
    ) -> dict[str, np.ndarray]:
        """Execute the per-iteration vector kernel on the simulator.

        Returns the updated iterates plus the KKT right-hand-side top
        block the kernel produced, for comparison against the host
        formulas of Algorithm 1 (lines 4-7).
        """
        sp = self.reference.scaling.scaled
        sim = self._network_sim()
        streams = StreamBuffers()
        streams.bind("q", sp.q)
        streams.bind("rho", self.reference.rho_vec)
        streams.bind("rho_inv", 1.0 / self.reference.rho_vec)
        streams.bind("bounds", np.concatenate([sp.l, sp.u]))
        alloc = self.builder.alloc
        for name, values in (
            ("adm_x", x),
            ("adm_xt", xt),
            ("adm_z", z),
            ("adm_zt", zt),
            ("adm_y", y),
        ):
            sim.rf.load_vector(alloc.get(name), values)
        sim.run(self.kernels.schedules["admm_vector"].slots, streams)
        return {
            "x": sim.rf.read_vector(alloc.get("adm_x")),
            "z": sim.rf.read_vector(alloc.get("adm_z")),
            "y": sim.rf.read_vector(alloc.get("adm_y")),
            "rhs_top": sim.rf.read_vector(alloc.get("adm_rhs_top")),
        }

    def apply_s_on_network(self, v: np.ndarray) -> np.ndarray:
        """Execute one S·v product on the simulator (indirect variant)."""
        if self.variant != "indirect":
            raise ValueError("S-product network path is indirect-only")
        sp = self.reference.scaling.scaled
        sim = self._network_sim()
        streams = StreamBuffers()
        streams.bind("A", sp.a.data)
        streams.bind("P", sp.p_full.data)
        streams.bind("rho", self.reference.rho_vec)
        sim.rf.load_vector(self.builder.alloc.get("cg_v"), v)
        self._run_kernel(sim, "apply_s", streams)
        return sim.rf.read_vector(self.builder.alloc.get("cg_sv"))
