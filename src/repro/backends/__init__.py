"""Execution backends: the MIB compiled solver, the host reference,
and analytical models of the paper's baseline platforms."""

from .cpu import (
    ReferenceBatchRun,
    ReferenceRun,
    run_reference,
    run_reference_batch,
)
from .mib import (
    MIBBatchReport,
    MIBNetworkSolveReport,
    MIBSolveReport,
    MIBSolver,
)
from .models import (
    PLATFORMS,
    Platform,
    cpu_platform_for,
    model_runtime,
    sample_jittered_runtimes,
)
from .session import SessionStep, SolveSession

__all__ = [
    "MIBBatchReport",
    "MIBNetworkSolveReport",
    "MIBSolveReport",
    "MIBSolver",
    "PLATFORMS",
    "Platform",
    "ReferenceBatchRun",
    "ReferenceRun",
    "cpu_platform_for",
    "model_runtime",
    "run_reference",
    "run_reference_batch",
    "sample_jittered_runtimes",
    "SessionStep",
    "SolveSession",
]
