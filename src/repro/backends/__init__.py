"""Execution backends: the MIB compiled solver, the host reference,
and analytical models of the paper's baseline platforms."""

from .cpu import ReferenceRun, run_reference
from .mib import MIBNetworkSolveReport, MIBSolveReport, MIBSolver
from .models import (
    PLATFORMS,
    Platform,
    cpu_platform_for,
    model_runtime,
    sample_jittered_runtimes,
)

__all__ = [
    "MIBNetworkSolveReport",
    "MIBSolveReport",
    "MIBSolver",
    "PLATFORMS",
    "Platform",
    "ReferenceRun",
    "cpu_platform_for",
    "model_runtime",
    "run_reference",
    "sample_jittered_runtimes",
]
