"""Reference (host) execution of the solver, with wall-clock timing.

This is the "same algorithm variation running on CPU backends" of the
paper's comparison, in the only form available here: the pure-Python
reference implementation.  Wall-clock numbers from Python carry no
fidelity to MKL/QDLDL (that is what :mod:`repro.backends.models` is
for); this backend exists as the functional oracle and for relative
sanity checks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..solver import OSQPSolver, QPProblem, Settings, SolveResult

__all__ = ["ReferenceBatchRun", "ReferenceRun", "run_reference", "run_reference_batch"]


@dataclass(frozen=True)
class ReferenceRun:
    """A timed host-side solve."""

    result: SolveResult
    wall_seconds: float
    setup_seconds: float


@dataclass(frozen=True)
class ReferenceBatchRun:
    """N independent host-side solves of same-pattern instances.

    The approximate oracle for :meth:`MIBSolver.solve_batch`: each
    instance gets its own solver (hence its own Ruiz scaling), so the
    comparison is to-tolerance, not bitwise — the bitwise oracle is
    ``bind_instance`` + ``solve_on_network`` on the shared solver.
    """

    results: list[SolveResult]
    wall_seconds: float


def run_reference(
    problem: QPProblem,
    *,
    variant: str = "direct",
    settings: Settings | None = None,
    **solver_kwargs,
) -> ReferenceRun:
    """Solve on the host reference implementation with timing."""
    t0 = time.perf_counter()
    solver = OSQPSolver(problem, variant=variant, settings=settings, **solver_kwargs)
    t1 = time.perf_counter()
    result = solver.solve()
    t2 = time.perf_counter()
    return ReferenceRun(
        result=result, wall_seconds=t2 - t1, setup_seconds=t1 - t0
    )


def run_reference_batch(
    problems: list[QPProblem],
    *,
    variant: str = "direct",
    settings: Settings | None = None,
    **solver_kwargs,
) -> ReferenceBatchRun:
    """Solve N same-pattern instances independently on the host."""
    t0 = time.perf_counter()
    results = [
        OSQPSolver(
            problem, variant=variant, settings=settings, **solver_kwargs
        ).solve()
        for problem in problems
    ]
    return ReferenceBatchRun(
        results=results, wall_seconds=time.perf_counter() - t0
    )
