"""QP-as-a-service HTTP front-end (pure standard library).

``ServeServer`` composes the subsystem: a ``ThreadingHTTPServer``
accepts connections (one handler thread per request), handlers parse
and admit requests, and an execution tier drains them:

* **in-process** (default) — a :class:`~repro.serve.engine.SolveEngine`
  owning the warm :class:`~repro.serve.pool.SolverPool`, the bounded
  :class:`~repro.serve.queue.RequestQueue` and the batching
  controller, drained by worker threads;
* **sharded** (``shards=N``) — a
  :class:`~repro.shard.frontend.ShardFrontend` routing each request by
  its pattern fingerprint to one of N worker *processes*, each owning
  a private pool+engine shard (see :mod:`repro.shard`).  The GIL stops
  being the throughput ceiling; results stay bit-identical to the
  in-process path.

The handler thread waits on the request's event up to its deadline —
so a slow solve never wedges the listener, and an expired wait yields
a structured ``TIMEOUT`` body instead of a hung socket.

API (all JSON):

* ``POST /v1/solve`` — body ``{"problem": <repro-qp-v1 doc>,
  "timeout_s": <float, optional>, "session": <str, optional>}``; 200
  with the solve payload, 400 on malformed input, 503 when the queue
  rejects (backpressure), 504 on deadline expiry.  A ``session`` key
  makes the warm start *sticky*: the solve restores that session's
  carried ``(x, y, ρ)`` and saves the new iterate back (see
  DESIGN.md §5.8).
* ``POST /v1/sequence`` — body ``{"problem": <doc>, "steps":
  [<override>, ...], "session": <str, optional>, "timeout_s":
  <float, optional>}`` where each override is an object with any of
  ``q``/``l``/``u`` (bounds use the ``"inf"`` encoding) and
  ``a_data``/``p_data`` (new non-zero values in canonical CSC order,
  ``P`` upper-triangular).  The steps run *in order* on one session
  (fields left out inherit the base document bitwise — the delta-bind
  fast path), answered as one response with per-step payloads; 504
  mid-sequence carries ``steps_completed`` so the client replays only
  the tail.
* ``POST /v1/scenarios`` — body ``{"problem": <doc>, "scenarios":
  [<override>, ...], "timeout_s": <float, optional>}``; fans N
  perturbed variants of one pattern onto the pool's batch lanes and
  answers once with per-lane payloads.
* ``GET /v1/health`` — liveness + pool occupancy (per-shard liveness
  and pattern residency when sharded; HTTP 207 while degraded).
* ``GET /v1/metrics`` — the :class:`~repro.serve.metrics.ServeMetrics`
  snapshot (aggregated across shards when sharded), including the
  session-store block.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..io import decode_bounds, problem_from_dict, problem_with_values
from ..solver import QPProblem
from .controller import BatchController
from .engine import SolveEngine
from .metrics import ServeMetrics
from .pool import SolverPool
from .queue import QueueFullError, RequestQueue, SolveRequest

__all__ = ["ServeServer"]

# Grace added to the handler's event wait beyond the request deadline:
# the worker owns deadline bookkeeping; the handler only backstops it.
_WAIT_GRACE_S = 0.05

# Streaming caps: a sequence holds a session lock for its whole span
# and a scenario fan-out occupies a full batched pass, so both are
# bounded per request (clients chunk longer streams across requests —
# the session carries the state over).
MAX_SEQUENCE_STEPS = 512
MAX_SCENARIO_LANES = 64

_OVERRIDE_FIELDS = frozenset({"q", "l", "u", "a_data", "p_data"})


def _materialize_variants(
    base: QPProblem, raw, cap: int, what: str
) -> list[QPProblem]:
    """Apply a list of wire-form overrides to the base problem."""
    if not isinstance(raw, list) or not raw:
        raise ValueError(f"{what!r} must be a non-empty list")
    if len(raw) > cap:
        raise ValueError(
            f"at most {cap} {what} per request (got {len(raw)})"
        )
    variants: list[QPProblem] = []
    for index, override in enumerate(raw):
        if override is None:
            override = {}
        if not isinstance(override, dict):
            raise ValueError(f"{what}[{index}] must be an override object")
        unknown = set(override) - _OVERRIDE_FIELDS
        if unknown:
            raise ValueError(
                f"{what}[{index}] has unknown fields {sorted(unknown)}"
            )
        variants.append(
            problem_with_values(
                base,
                q=(
                    np.asarray(override["q"], dtype=np.float64)
                    if "q" in override
                    else None
                ),
                l=decode_bounds(override["l"]) if "l" in override else None,
                u=decode_bounds(override["u"]) if "u" in override else None,
                a_data=override.get("a_data"),
                p_data=override.get("p_data"),
            )
        )
    return variants


class _HTTPServer(ThreadingHTTPServer):
    # The stdlib default listen backlog of 5 drops SYNs under a
    # concurrent burst; the kernel's 1-second retransmit then shows up
    # as a bimodal ~1s latency tail that has nothing to do with
    # solving.  Size the backlog to the admission bound instead.
    request_queue_size = 128
    daemon_threads = True


class ServeServer:
    """The long-running solve service (embeddable and CLI-run).

    Usable as a context manager::

        with ServeServer(port=0, workers=2) as server:
            client = ServeClient(port=server.port)
            response = client.solve(problem)

    ``workers=0`` starts no drain loop (test hook: requests queue up
    and time out unless drained manually).  ``shards=N`` (N >= 1)
    promotes execution to N worker processes; ``workers`` then counts
    drain threads *per shard*.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        pool: SolverPool | None = None,
        queue_size: int = 64,
        max_batch: int = 16,
        batch_policy: str = "greedy",
        controller: BatchController | None = None,
        default_timeout_s: float = 30.0,
        shards: int = 0,
        **pool_kwargs,
    ) -> None:
        if shards < 0:
            raise ValueError("shards must be >= 0 (0 = in-process)")
        self.default_timeout_s = default_timeout_s
        self.workers = workers
        self.started_at = time.monotonic()
        self.frontend = None
        if shards:
            if pool is not None or controller is not None:
                raise ValueError(
                    "a sharded server builds its pools and controllers "
                    "inside the shard workers; pass pool/controller "
                    "kwargs instead"
                )
            from ..shard import ShardFrontend

            self.frontend = ShardFrontend(
                shards=shards,
                workers=workers,
                queue_size=queue_size,
                max_batch=max_batch,
                batch_policy=batch_policy,
                **pool_kwargs,
            )
            self.engine = None
        else:
            self.engine = SolveEngine(
                workers=workers,
                pool=pool,
                queue_size=queue_size,
                max_batch=max_batch,
                batch_policy=batch_policy,
                controller=controller,
                **pool_kwargs,
            )
        self._threads: list[threading.Thread] = []
        self._http = _HTTPServer((host, port), _make_handler(self))
        self.host = host
        self.port = int(self._http.server_address[1])

    # ------------------------------------------------------------------
    # The in-process engine's internals, re-exported for embedders and
    # the test suite (None / raising when sharded).
    # ------------------------------------------------------------------
    @property
    def pool(self) -> SolverPool:
        return self.engine.pool

    @property
    def queue(self) -> RequestQueue:
        return self.engine.queue

    @property
    def controller(self) -> BatchController:
        return self.engine.controller

    @property
    def max_batch(self) -> int:
        return (
            self.frontend.max_batch
            if self.frontend is not None
            else self.engine.max_batch
        )

    @property
    def metrics(self) -> ServeMetrics:
        """The live metrics registry (the in-process engine's, or the
        sharded front-end's admission-side registry)."""
        if self.frontend is not None:
            return self.frontend.metrics
        return self.engine.metrics

    @property
    def sharded(self) -> bool:
        return self.frontend is not None

    def _process(self, request: SolveRequest) -> None:
        self.engine._process(request)

    def _process_batch(self, batch) -> None:
        self.engine._process_batch(batch)

    def _timeout_queued(self, request: SolveRequest) -> None:
        self.engine._timeout_queued(request)

    # ------------------------------------------------------------------
    def start(self) -> "ServeServer":
        if self.frontend is not None:
            self.frontend.start()
        else:
            self.engine.start()
        listener = threading.Thread(
            target=self._http.serve_forever, name="serve-http", daemon=True
        )
        listener.start()
        self._threads.append(listener)
        return self

    def stop(self) -> None:
        """Shut down: stop admissions, answer stragglers, close HTTP."""
        if self.frontend is not None:
            self.frontend.stop()
        else:
            self.engine.stop()
        self._http.shutdown()
        self._http.server_close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()

    def __enter__(self) -> "ServeServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # handler side
    # ------------------------------------------------------------------
    def _parse_base(self, body: dict) -> tuple[QPProblem, str]:
        """Decode the base problem document and fingerprint it."""
        tier = self.frontend if self.frontend is not None else self.engine
        problem = problem_from_dict(body["problem"])
        return problem, tier.pool.fingerprint(problem)

    def _admit_and_wait(
        self, request: SolveRequest, timeout_s: float
    ) -> tuple[int, dict]:
        """Submit one request to the execution tier and await it."""
        tier = self.frontend if self.frontend is not None else self.engine
        try:
            tier.submit(request)
        except QueueFullError as exc:
            payload = {"status": "rejected", "detail": str(exc)}
            request.respond(503, payload)
            self.metrics.inc("rejected")
            return 503, payload
        if not request.done.wait(timeout=timeout_s + _WAIT_GRACE_S):
            # Deadline backstop: the worker never published (still
            # queued, or mid-solve).  Publish the timeout ourselves;
            # the worker's eventual attempt becomes a no-op.
            if request.respond(
                504,
                {
                    "status": "timeout",
                    "detail": f"no response within {timeout_s}s",
                },
            ):
                self.metrics.inc("timeouts")
                self.metrics.observe(
                    "total", time.monotonic() - request.enqueued_at
                )
        assert request.status_code is not None and request.response is not None
        return request.status_code, request.response

    def handle_solve(self, body: dict) -> tuple[int, dict]:
        """Admit one parsed request and wait for its response."""
        self.metrics.inc("requests_total")
        try:
            problem, fingerprint = self._parse_base(body)
        except Exception as exc:
            self.metrics.inc("responses_error")
            return 400, {
                "status": "error",
                "detail": f"malformed problem payload: {exc}",
            }
        session = body.get("session")
        timeout_s = float(body.get("timeout_s") or self.default_timeout_s)
        request = SolveRequest(
            problem=problem,
            fingerprint=fingerprint,
            deadline=time.monotonic() + timeout_s,
            session_key=str(session) if session is not None else None,
        )
        return self._admit_and_wait(request, timeout_s)

    def handle_sequence(self, body: dict) -> tuple[int, dict]:
        """Admit an ordered step list onto one session, answer once."""
        self.metrics.inc("requests_total")
        try:
            base, fingerprint = self._parse_base(body)
            steps = _materialize_variants(
                base, body.get("steps"), MAX_SEQUENCE_STEPS, "steps"
            )
        except Exception as exc:
            self.metrics.inc("responses_error")
            return 400, {
                "status": "error",
                "detail": f"malformed sequence payload: {exc}",
            }
        session = body.get("session")
        timeout_s = float(body.get("timeout_s") or self.default_timeout_s)
        request = SolveRequest(
            problem=steps[0],
            fingerprint=fingerprint,
            deadline=time.monotonic() + timeout_s,
            session_key=str(session) if session is not None else None,
            steps=steps,
        )
        return self._admit_and_wait(request, timeout_s)

    def handle_scenarios(self, body: dict) -> tuple[int, dict]:
        """Admit a scenario fan-out (N variants, one batched pass)."""
        self.metrics.inc("requests_total")
        try:
            base, fingerprint = self._parse_base(body)
            scenarios = _materialize_variants(
                base, body.get("scenarios"), MAX_SCENARIO_LANES, "scenarios"
            )
        except Exception as exc:
            self.metrics.inc("responses_error")
            return 400, {
                "status": "error",
                "detail": f"malformed scenarios payload: {exc}",
            }
        timeout_s = float(body.get("timeout_s") or self.default_timeout_s)
        request = SolveRequest(
            problem=scenarios[0],
            fingerprint=fingerprint,
            deadline=time.monotonic() + timeout_s,
            scenarios=scenarios,
        )
        return self._admit_and_wait(request, timeout_s)

    def health(self) -> tuple[int, dict]:
        """The liveness document plus its HTTP status (207 = degraded)."""
        base = {
            "status": "ok",
            "uptime_s": time.monotonic() - self.started_at,
            "workers": self.workers,
        }
        if self.frontend is not None:
            doc = self.frontend.health()
            base.update(doc)
            return (207 if base["status"] == "degraded" else 200), base
        base.update(
            {
                "pool_size": len(self.engine.pool),
                "pool_capacity": self.engine.pool.capacity,
                "queue_depth": len(self.engine.queue),
                "queue_capacity": self.engine.queue.maxsize,
                "variant": self.engine.pool.variant,
                "c": self.engine.pool.c,
                "batch_policy": self.engine.controller.policy,
                "sessions": len(self.engine.pool.sessions),
            }
        )
        return 200, base

    def metrics_snapshot(self) -> dict:
        """The /v1/metrics payload (aggregated across shards)."""
        if self.frontend is not None:
            return self.frontend.metrics_snapshot()
        snap = self.engine.metrics.snapshot()
        snap["controller"] = self.engine.controller.snapshot()
        snap["pool_entries"] = self.engine.pool.entries_info()
        snap["sessions"] = self.engine.pool.sessions.snapshot()
        return snap


def _make_handler(server: ServeServer) -> type[BaseHTTPRequestHandler]:
    """Bind a handler class to one ServeServer instance."""

    class Handler(BaseHTTPRequestHandler):
        # Keep the accept loop quiet; the metrics endpoint is the log.
        def log_message(self, *args) -> None:
            pass

        def _send_json(self, status_code: int, payload: dict) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status_code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            if self.path == "/v1/health":
                self._send_json(*server.health())
            elif self.path == "/v1/metrics":
                self._send_json(200, server.metrics_snapshot())
            else:
                self._send_json(
                    404, {"status": "error", "detail": "unknown endpoint"}
                )

        def do_POST(self) -> None:
            handlers = {
                "/v1/solve": server.handle_solve,
                "/v1/sequence": server.handle_sequence,
                "/v1/scenarios": server.handle_scenarios,
            }
            handler = handlers.get(self.path)
            if handler is None:
                self._send_json(
                    404, {"status": "error", "detail": "unknown endpoint"}
                )
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                body = json.loads(self.rfile.read(length))
                if not isinstance(body, dict):
                    raise ValueError("request body must be a JSON object")
            except Exception as exc:
                server.metrics.inc("responses_error")
                self._send_json(
                    400, {"status": "error", "detail": f"bad request: {exc}"}
                )
                return
            status_code, payload = handler(body)
            self._send_json(status_code, payload)

    return Handler
