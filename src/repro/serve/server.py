"""QP-as-a-service HTTP front-end (pure standard library).

``ServeServer`` composes the subsystem: a ``ThreadingHTTPServer``
accepts connections (one handler thread per request), handlers parse
and admit requests into the :class:`~repro.serve.queue.RequestQueue`,
and a configurable number of worker threads drain it through the
:class:`~repro.serve.pool.SolverPool`.  The handler thread then waits
on the request's event up to its deadline — so a slow solve never
wedges the listener, and an expired wait yields a structured
``TIMEOUT`` body instead of a hung socket.

API (all JSON):

* ``POST /v1/solve`` — body ``{"problem": <repro-qp-v1 doc>,
  "timeout_s": <float, optional>}``; 200 with the solve payload,
  400 on malformed input, 503 when the queue rejects (backpressure),
  504 on deadline expiry.
* ``GET /v1/health`` — liveness + pool occupancy.
* ``GET /v1/metrics`` — the :class:`~repro.serve.metrics.ServeMetrics`
  snapshot.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..io import problem_from_dict
from ..solver import SolverStatus
from .controller import BatchController
from .metrics import ServeMetrics
from .pool import SolverPool
from .queue import DispatchBatch, QueueFullError, RequestQueue, SolveRequest

__all__ = ["ServeServer"]

# Grace added to the handler's event wait beyond the request deadline:
# the worker owns deadline bookkeeping; the handler only backstops it.
_WAIT_GRACE_S = 0.05


class _HTTPServer(ThreadingHTTPServer):
    # The stdlib default listen backlog of 5 drops SYNs under a
    # concurrent burst; the kernel's 1-second retransmit then shows up
    # as a bimodal ~1s latency tail that has nothing to do with
    # solving.  Size the backlog to the admission bound instead.
    request_queue_size = 128
    daemon_threads = True


class ServeServer:
    """The long-running solve service (embeddable and CLI-run).

    Usable as a context manager::

        with ServeServer(port=0, workers=2) as server:
            client = ServeClient(port=server.port)
            response = client.solve(problem)

    ``workers=0`` starts no drain loop (test hook: requests queue up
    and time out unless drained manually).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        pool: SolverPool | None = None,
        queue_size: int = 64,
        max_batch: int = 16,
        batch_policy: str = "greedy",
        controller: BatchController | None = None,
        default_timeout_s: float = 30.0,
        **pool_kwargs,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.pool = pool if pool is not None else SolverPool(**pool_kwargs)
        self.metrics: ServeMetrics = self.pool.metrics
        self.queue = RequestQueue(maxsize=queue_size)
        self.max_batch = max_batch
        # The batching policy layer: decides which lanes share a batch
        # (``max_batch`` stays the hard cap) and when a pass bails out
        # of lockstep.  ``batch_policy="greedy"`` reproduces the
        # pre-controller behaviour exactly.
        self.controller = (
            controller
            if controller is not None
            else BatchController(policy=batch_policy, metrics=self.metrics)
        )
        self.default_timeout_s = default_timeout_s
        self.workers = workers
        self.started_at = time.monotonic()
        self._threads: list[threading.Thread] = []
        self._http = _HTTPServer((host, port), _make_handler(self))
        self.host = host
        self.port = int(self._http.server_address[1])

    # ------------------------------------------------------------------
    def start(self) -> "ServeServer":
        listener = threading.Thread(
            target=self._http.serve_forever, name="serve-http", daemon=True
        )
        listener.start()
        self._threads.append(listener)
        for i in range(self.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            worker.start()
            self._threads.append(worker)
        return self

    def stop(self) -> None:
        """Shut down: stop admissions, answer stragglers, close HTTP."""
        self.queue.close()
        for request in self.queue.drain():
            self._finish(
                request,
                503,
                {"status": "rejected", "detail": "server shutting down"},
            )
        self._http.shutdown()
        self._http.server_close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()

    def __enter__(self) -> "ServeServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self.queue.next_batch(
                max_batch=self.max_batch,
                rider=self.controller.rider,
                window=self.controller.dispatch_window,
                cap=lambda head: self.controller.max_batch_for(
                    head.fingerprint, self.max_batch
                ),
            )
            if batch is None:  # queue closed
                return
            for request in batch.expired:
                # Swept at pop time: the deadline passed while queued,
                # so the request never occupies a solve lane.
                self.metrics.inc("expired_at_pop")
                self._timeout_queued(request)
            if len(batch) > 1:
                self.metrics.inc("coalesced_batches")
                self.metrics.inc("coalesced_requests", len(batch) - 1)
                self._process_batch(batch)
            elif batch:
                self._process(batch[0])

    def _timeout_queued(self, request: SolveRequest) -> None:
        queue_wait = time.monotonic() - request.enqueued_at
        self.metrics.observe("queue_wait", queue_wait)
        self._finish(
            request,
            504,
            {
                "status": "timeout",
                "detail": "deadline expired while queued",
                "queue_seconds": queue_wait,
            },
        )

    def _ok_payload(
        self, solved, queue_wait: float, *, batched: bool, batch_lanes: int
    ) -> dict:
        result = solved.report.result
        return {
            "status": "ok",
            "fingerprint": solved.fingerprint,
            "warm": solved.warm,
            "cache_hit": solved.cache_hit,
            "batched": batched,
            "batch_lanes": batch_lanes,
            "queue_seconds": queue_wait,
            "compile_seconds": solved.compile_seconds,
            "solve_seconds": solved.solve_seconds,
            "cycles": solved.report.cycles,
            "runtime_seconds": solved.report.runtime_seconds,
            "solved": result.status is SolverStatus.SOLVED,
            "result": result.to_dict(),
        }

    def _process(self, request: SolveRequest) -> None:
        queue_wait = time.monotonic() - request.enqueued_at
        self.metrics.observe("queue_wait", queue_wait)
        if request.expired():
            self._finish(
                request,
                504,
                {
                    "status": "timeout",
                    "detail": "deadline expired while queued",
                    "queue_seconds": queue_wait,
                },
            )
            return
        self._solve_solo(request, queue_wait)

    def _solve_solo(self, request: SolveRequest, queue_wait: float) -> None:
        cpu_t0 = time.thread_time()
        try:
            solved = self.pool.solve(
                request.problem, fingerprint=request.fingerprint
            )
        except Exception as exc:  # a poisoned request must not kill workers
            self._finish(
                request,
                500,
                {"status": "error", "detail": f"{type(exc).__name__}: {exc}"},
            )
            return
        if solved.warm:
            # Only warm solves inform the cost model: a cold solve's
            # cost is dominated by construction, not the pattern's
            # per-instance solve economics.  Priced in this worker
            # thread's CPU time so concurrent handler threads don't
            # charge their interpreter contention to the solve.
            self.controller.observe_solo(
                request.fingerprint,
                seconds=time.thread_time() - cpu_t0,
                iterations=solved.report.result.iterations,
            )
        self._finish(
            request,
            200,
            self._ok_payload(solved, queue_wait, batched=False, batch_lanes=1),
        )

    def _process_batch(self, batch: DispatchBatch) -> None:
        """Dispatch a coalesced batch as one batched pool solve.

        Per-request deadlines hold inside the batch: lanes already
        expired at dispatch are answered 504 and dropped before the
        solve, so they never displace or poison their siblings, and a
        failure answers only the live lanes that were actually in the
        pass.
        """
        now = time.monotonic()
        live: list[SolveRequest] = []
        waits: dict[int, float] = {}
        for request in batch:
            queue_wait = now - request.enqueued_at
            self.metrics.observe("queue_wait", queue_wait)
            if request.expired(now):
                self._finish(
                    request,
                    504,
                    {
                        "status": "timeout",
                        "detail": "deadline expired while queued",
                        "queue_seconds": queue_wait,
                    },
                )
            else:
                live.append(request)
                waits[request.request_id] = queue_wait
        if not live:
            return
        if len(live) == 1:
            request = live[0]
            self._solve_solo(request, waits[request.request_id])
            return
        # Bail-out budget: the tightest live deadline bounds how long a
        # pass may chase stragglers before splitting them out.
        remaining = [
            r for r in (req.remaining(now) for req in live) if r is not None
        ]
        progress = self.controller.make_progress(
            batch.fingerprint,
            deadline_remaining=min(remaining) if remaining else None,
        )
        published: set[int] = set()
        pass_t0 = time.perf_counter()
        pass_cpu_t0 = time.thread_time()

        def lane_done(index: int, solved) -> None:
            # Called at harvest time (fast lanes before slow ones, under
            # the pool entry's lock): answer the request now instead of
            # at the end of the pass — the controller's p50 lever.
            published.add(index)
            request = live[index]
            self._finish(
                request,
                200,
                self._ok_payload(
                    solved,
                    waits[request.request_id],
                    batched=True,
                    batch_lanes=len(live),
                ),
            )

        try:
            solves = self.pool.solve_batch(
                [r.problem for r in live],
                fingerprint=batch.fingerprint,
                progress=progress,
                on_lane=lane_done,
            )
        except Exception as exc:
            for index, request in enumerate(live):
                if index not in published:
                    self._finish(
                        request,
                        500,
                        {
                            "status": "error",
                            "detail": f"{type(exc).__name__}: {exc}",
                        },
                    )
            return
        pass_seconds = time.perf_counter() - pass_t0
        pass_cpu = time.thread_time() - pass_cpu_t0
        # Lanes answered before the slowest lane finished — the wait
        # the old publish-at-pass-end behaviour would have added.
        slowest = max(s.solve_seconds for s in solves)
        early = sum(1 for s in solves if s.solve_seconds < slowest)
        if early:
            self.metrics.inc("early_responses", early)
        # Backstop: publish any lane the callback missed (sequential
        # fallback paths always invoke it, but stay defensive).
        for index, (request, solved) in enumerate(zip(live, solves)):
            if index not in published:
                self._finish(
                    request,
                    200,
                    self._ok_payload(
                        solved,
                        waits[request.request_id],
                        batched=True,
                        batch_lanes=len(live),
                    ),
                )
        if self.pool.variant == "direct":
            # Feed the cost model: per-lane iterations, pass cost in
            # this worker's CPU time (comparable to the solo pricing —
            # wall time would bill the pass for the handler threads it
            # wakes with its own early responses), rho fallbacks vs
            # controller bail-outs.
            self.controller.observe_pass(
                batch.fingerprint,
                lanes=len(live),
                seconds=pass_cpu,
                lane_iterations=[
                    s.report.result.iterations for s in solves
                ],
                solo_lanes=sum(s.solo_lane for s in solves),
                bailed_lanes=sum(s.bailed_lane for s in solves),
            )

    def _finish(
        self, request: SolveRequest, status_code: int, payload: dict
    ) -> None:
        """Publish a response exactly once and account it."""
        if not request.respond(status_code, payload):
            # The front-end already answered (deadline backstop); a
            # completed solve arriving late is recorded as a timeout
            # casualty, not a served response.
            if status_code == 200:
                self.metrics.inc("timeouts")
            return
        if status_code == 200:
            self.metrics.inc("responses_ok")
        elif status_code == 504:
            self.metrics.inc("timeouts")
        elif status_code == 503:
            self.metrics.inc("rejected")
        else:
            self.metrics.inc("responses_error")
        self.metrics.observe("total", time.monotonic() - request.enqueued_at)

    # ------------------------------------------------------------------
    # handler side
    # ------------------------------------------------------------------
    def handle_solve(self, body: dict) -> tuple[int, dict]:
        """Admit one parsed request and wait for its response."""
        self.metrics.inc("requests_total")
        try:
            problem = problem_from_dict(body["problem"])
            fingerprint = self.pool.fingerprint(problem)
        except Exception as exc:
            self.metrics.inc("responses_error")
            return 400, {
                "status": "error",
                "detail": f"malformed problem payload: {exc}",
            }
        timeout_s = float(body.get("timeout_s") or self.default_timeout_s)
        request = SolveRequest(
            problem=problem,
            fingerprint=fingerprint,
            deadline=time.monotonic() + timeout_s,
        )
        try:
            self.queue.submit(request)
        except QueueFullError as exc:
            payload = {"status": "rejected", "detail": str(exc)}
            request.respond(503, payload)
            self.metrics.inc("rejected")
            return 503, payload
        if not request.done.wait(timeout=timeout_s + _WAIT_GRACE_S):
            # Deadline backstop: the worker never published (still
            # queued, or mid-solve).  Publish the timeout ourselves;
            # the worker's eventual attempt becomes a no-op.
            if request.respond(
                504,
                {
                    "status": "timeout",
                    "detail": f"no response within {timeout_s}s",
                },
            ):
                self.metrics.inc("timeouts")
                self.metrics.observe(
                    "total", time.monotonic() - request.enqueued_at
                )
        assert request.status_code is not None and request.response is not None
        return request.status_code, request.response

    def health(self) -> dict:
        return {
            "status": "ok",
            "uptime_s": time.monotonic() - self.started_at,
            "pool_size": len(self.pool),
            "pool_capacity": self.pool.capacity,
            "queue_depth": len(self.queue),
            "queue_capacity": self.queue.maxsize,
            "workers": self.workers,
            "variant": self.pool.variant,
            "c": self.pool.c,
            "batch_policy": self.controller.policy,
        }


def _make_handler(server: ServeServer) -> type[BaseHTTPRequestHandler]:
    """Bind a handler class to one ServeServer instance."""

    class Handler(BaseHTTPRequestHandler):
        # Keep the accept loop quiet; the metrics endpoint is the log.
        def log_message(self, *args) -> None:
            pass

        def _send_json(self, status_code: int, payload: dict) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status_code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            if self.path == "/v1/health":
                self._send_json(200, server.health())
            elif self.path == "/v1/metrics":
                snap = server.metrics.snapshot()
                snap["controller"] = server.controller.snapshot()
                self._send_json(200, snap)
            else:
                self._send_json(
                    404, {"status": "error", "detail": "unknown endpoint"}
                )

        def do_POST(self) -> None:
            if self.path != "/v1/solve":
                self._send_json(
                    404, {"status": "error", "detail": "unknown endpoint"}
                )
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                body = json.loads(self.rfile.read(length))
                if not isinstance(body, dict):
                    raise ValueError("request body must be a JSON object")
            except Exception as exc:
                server.metrics.inc("responses_error")
                self._send_json(
                    400, {"status": "error", "detail": f"bad request: {exc}"}
                )
                return
            status_code, payload = server.handle_solve(body)
            self._send_json(status_code, payload)

    return Handler
