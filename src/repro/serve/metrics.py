"""Live service metrics: counters and latency histograms.

The serve layer's observability surface — exposed as JSON on
``GET /v1/metrics`` while the server runs and rendered as a report
block on shutdown.  The headline split mirrors the paper's economics:
*compile* latency (cold pattern, full lowering + scheduling) against
*warm-solve* latency (pattern already resident, ``update_values``
rebind only), plus the queue/coalescing behaviour that keeps the warm
path hot.

Everything is guarded by one lock; the counters are incremented from
HTTP handler threads and pool worker threads concurrently.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["LatencyHistogram", "ServeMetrics"]

# Counter names, in report order.  Keeping the set closed (increment
# raises on an unknown name) catches typos at the call site instead of
# silently forking a new series.
COUNTERS = (
    "requests_total",
    "responses_ok",
    "responses_error",
    "rejected",        # queue-full admission failures
    "timeouts",        # deadline expiries (queued or unread responses)
    "pool_hits",       # request served by a resident warm solver
    "pool_misses",     # solver constructed (cache may still have helped)
    "pool_evictions",
    "compile_count",   # full lowering+scheduling runs (cold compiles)
    "warm_solve_count",  # solves on a pooled solver via update_values
    "coalesced_batches",   # batches with >1 same-pattern request
    "coalesced_requests",  # requests that rode along in such batches
    "batched_solves",      # replay_batch passes (one per multi-lane batch)
    "batched_lanes",       # lanes executed inside those passes
    "expired_at_pop",      # requests already dead when dequeued (no lane)
    "admm_iterations",
    # Host→numpy dispatch crossings attributed to solves: recorded
    # crossings on the batched replay path, per-iteration crossings of
    # the pool's execution mode x iterations on the modeled solo path.
    "host_crossings",
    # Adaptive batching controller (see repro.serve.controller):
    "rider_rejects_cap",       # ride-alongs refused by the learned cap
    "rider_rejects_distance",  # ride-alongs refused by value bucketing
    "bailout_lanes",           # lanes split out of lockstep mid-flight
    "early_responses",         # lanes answered before their pass ended
    # Sharded serve tier (see repro.shard); counted front-end side:
    "shard_respawns",          # worker deaths detected (and respawned)
    "shard_death_503",         # in-flight requests failed fast on death
    "shard_reroutes",          # requests routed off their home shard
    "shard_inline_fallback",   # payloads sent inline (slab ring saturated)
    # Streaming sessions and scenario fan-out (see repro.serve.session):
    "session_created",         # new session keys admitted to the store
    "session_resets",          # keys reused with a different pattern
    "session_evictions",       # TTL expiries + LRU capacity evictions
    "session_solves",          # solves served with carried session state
    "session_503",             # session requests failed fast (shard down)
    "sequence_requests",       # POST /v1/sequence bodies admitted
    "sequence_steps",          # steps solved inside those sequences
    "delta_binds",             # vector-only rebinds (matrix work skipped)
    "scenario_requests",       # POST /v1/scenarios bodies admitted
    "scenario_lanes",          # perturbed variants fanned onto batch lanes
)

HISTOGRAMS = (
    "queue_wait",   # submit -> worker pickup
    "compile",      # solver construction on the miss path
    "warm_solve",   # update_values + solve on the hit path
    "solve",        # solver.solve() wall time, both paths
    "total",        # submit -> response
)


class LatencyHistogram:
    """Bounded-sample latency series with percentile summaries.

    Samples are kept verbatim up to ``max_samples`` (a serve session's
    working set, not an unbounded log).  Beyond that the series thins
    to systematic sampling: the retention stride doubles and the
    buffer halves, so the retained samples stay uniformly spread over
    the *whole* stream rather than biased toward recent requests.
    Percentiles come from the retained samples; ``count``/``total``/
    ``max`` are exact regardless.
    """

    def __init__(self, *, max_samples: int = 65536) -> None:
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._samples: list[float] = []
        self._stride = 1
        self._skipped = 0  # samples since the last retained one

    def record(self, seconds: float) -> None:
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        self.max = max(self.max, seconds)
        self._skipped += 1
        if self._skipped < self._stride:
            return
        self._skipped = 0
        self._samples.append(seconds)
        if len(self._samples) >= self.max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100) of the retained samples."""
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, p))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "max_s": self.max,
        }


class ServeMetrics:
    """Thread-safe counter/histogram registry for one serve session."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters = {name: 0 for name in COUNTERS}
        self._histograms = {name: LatencyHistogram() for name in HISTOGRAMS}
        # batch size -> number of batched-solve passes at that size
        self._batch_sizes: dict[int, int] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def observe_batch(self, lanes: int, count: int = 1) -> None:
        """Record ``count`` batched solve passes of ``lanes`` lanes."""
        with self._lock:
            self._batch_sizes[int(lanes)] = (
                self._batch_sizes.get(int(lanes), 0) + count
            )

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            self._histograms[name].record(seconds)

    def count(self, name: str) -> int:
        with self._lock:
            return self._counters[name]

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One consistent JSON-ready view (the /v1/metrics payload)."""
        with self._lock:
            counters = dict(self._counters)
            latencies = {
                name: h.snapshot() for name, h in self._histograms.items()
            }
            batch_sizes = {
                str(size): count
                for size, count in sorted(self._batch_sizes.items())
            }
        lookups = counters["pool_hits"] + counters["pool_misses"]
        return {
            "counters": counters,
            "latency": latencies,
            "batch_sizes": batch_sizes,
            "pool_hit_rate": counters["pool_hits"] / lookups if lookups else 0.0,
        }

    def render(self) -> str:
        """Human-readable shutdown report."""
        from ..analysis import kv_block

        snap = self.snapshot()
        rows: list[tuple[str, object]] = list(snap["counters"].items())
        rows.append(("pool_hit_rate", f"{snap['pool_hit_rate']:.1%}"))
        if snap["batch_sizes"]:
            rows.append(
                (
                    "batch sizes (lanes x passes)",
                    ", ".join(
                        f"{size}x{count}"
                        for size, count in snap["batch_sizes"].items()
                    ),
                )
            )
        for name, h in snap["latency"].items():
            if h["count"]:
                rows.append(
                    (
                        f"{name} latency (p50/p95/p99)",
                        f"{h['p50_s'] * 1e3:.2f} / {h['p95_s'] * 1e3:.2f}"
                        f" / {h['p99_s'] * 1e3:.2f} ms",
                    )
                )
        return kv_block("serve metrics", rows)
