"""Warm solver pool keyed by sparsity-pattern fingerprint.

The serve layer's core amortization structure.  A
:class:`~repro.backends.mib.MIBSolver` is expensive to construct (full
lowering + multi-issue scheduling of every kernel) and nearly free to
*rebind* (``update_values`` refreshes numbers only — the paper's
compile-once/solve-many mechanism).  The pool therefore keeps one warm
solver per resident pattern:

* **hit** — the request's fingerprint matches a resident solver; the
  new numeric instance is bound with ``update_values`` and solved.
  Lowering and scheduling never run.
* **miss** — a solver is constructed through the shared
  :class:`~repro.compiler.ScheduleCache`, so even a cold pool entry
  skips scheduling when the pattern was ever compiled before (by this
  process, a sibling worker, or a previous run sharing the cache
  directory).

Entries are evicted least-recently-used beyond ``capacity``.  The pool
is thread-safe: the resident map has one lock, each entry serializes
its own solves (a solver holds mutable iterate state), and per-key
construction locks ensure a pattern is compiled once even when many
threads miss on it simultaneously.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..backends.mib import (
    PCIE_BANDWIDTH,
    PCIE_LATENCY,
    MIBSolveReport,
    MIBSolver,
)
from ..backends.session import SolveSession
from ..compiler import ScheduleCache, ScheduleOptions
from ..solver import OpTrace, QPProblem, Settings, SolveResult
from ..xp import BackendPolicy
from .metrics import ServeMetrics
from .session import SessionStore

__all__ = ["PoolSolve", "SolverPool"]


@dataclass
class _PoolEntry:
    solver: MIBSolver
    lock: threading.Lock = field(default_factory=threading.Lock)
    solves: int = 0
    # Last iterate of this pattern, for warm starting: (x, y, rho).
    # rho rides along so a pool-level warm start resumes the adapted
    # penalty even when interleaved sessions or batch passes moved the
    # resident solver's rho in between (it used to re-learn it).
    last_iterate: tuple | None = None
    # Per-iteration host→numpy crossings of this pattern under the
    # pool's execution mode; computed once on first use (forces trace
    # lowering, a one-time per-pattern cost).
    crossings_per_iter: int | None = None


@dataclass(frozen=True)
class PoolSolve:
    """One pool-served solve: the report plus how it was served."""

    fingerprint: str
    report: MIBSolveReport
    warm: bool  # served by a resident solver (no construction at all)
    cache_hit: bool  # construction (if any) restored from the cache
    compile_seconds: float  # 0.0 on the warm path
    solve_seconds: float
    # Batched path only: the lane left lockstep (rho refactorization
    # or controller bail-out); ``bailed_lane`` isolates the latter.
    solo_lane: bool = False
    bailed_lane: bool = False
    # Streaming path only: the rebind skipped matrix work (vectors-only
    # delta), and the session key whose carried state seeded the solve.
    delta_bind: bool = False
    session_key: str | None = None


class SolverPool:
    """Thread-safe LRU pool of warm pattern-compiled solvers.

    Parameters
    ----------
    capacity:
        Resident solver budget (patterns, not bytes).  Evicting an
        entry only drops the warm solver; its compiled artifact stays
        in the schedule cache, so re-admission skips scheduling.
    variant / c / settings / execution:
        Solver configuration shared by every entry; part of the
        pattern fingerprint, so one pool serves exactly one
        configuration (run several pools for several).
    cache:
        Shared :class:`~repro.compiler.ScheduleCache`; constructed
        internally when not given (``cache_dir`` selects the on-disk
        location, memory-only otherwise).
    metrics:
        Shared :class:`~repro.serve.metrics.ServeMetrics` registry.
    warm_start:
        Seed each solve from the pattern's previous solution (the
        MPC/embedded serving convention: consecutive instances of one
        pattern are usually perturbations of each other, so the last
        iterate is an excellent start).  Termination tolerances are
        unchanged — only the iteration count drops.
    """

    def __init__(
        self,
        *,
        capacity: int = 8,
        variant: str = "direct",
        c: int = 16,
        settings: Settings | None = None,
        execution: str = "replay",
        cache: ScheduleCache | None = None,
        cache_dir: str | None = None,
        metrics: ServeMetrics | None = None,
        warm_start: bool = False,
        array_backend: str = "auto",
        session_capacity: int = 256,
        session_ttl_s: float = 300.0,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.variant = variant
        self.c = c
        self.settings = settings if settings is not None else Settings()
        self.execution = execution
        # Resolved eagerly so a forced-but-missing accelerator fails at
        # pool construction, not on the first request.
        self.array_backend = array_backend
        self.backend_policy = BackendPolicy.resolve(array_backend)
        self.cache = cache if cache is not None else ScheduleCache(cache_dir)
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.warm_start = warm_start
        # Mirrors MIBSolver's default scheduler configuration; the
        # fingerprint must match the key the solver computes itself.
        self._options = ScheduleOptions()
        self._entries: OrderedDict[str, _PoolEntry] = OrderedDict()
        self._lock = threading.RLock()
        self._building: dict[str, threading.Lock] = {}
        # Client-keyed carried iterates for the streaming API (sticky
        # warm start on /v1/solve, /v1/sequence steps).
        self.sessions = SessionStore(
            capacity=session_capacity,
            ttl_s=session_ttl_s,
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------
    def fingerprint(self, problem: QPProblem) -> str:
        """The pattern+configuration key a request coalesces under."""
        return self.cache.key_for(
            problem,
            variant=self.variant,
            c=self.c,
            options=self._options,
            settings=self.settings,
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def fingerprints(self) -> list[str]:
        """Resident patterns, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def entries_info(self) -> list[dict]:
        """Per-entry observability for ``/v1/metrics``: fingerprint,
        solve count, the entry's resolved array-backend selection, and
        the per-iteration crossing count (``None`` until the first
        solve lowers the traces)."""
        with self._lock:
            items = list(self._entries.items())
        return [
            {
                "fingerprint": key,
                "solves": entry.solves,
                "array_backend": entry.solver.backend_policy.describe(),
                "crossings_per_iter": entry.crossings_per_iter,
            }
            for key, entry in items
        ]

    # ------------------------------------------------------------------
    def solve(
        self,
        problem: QPProblem,
        *,
        fingerprint: str | None = None,
        session: str | None = None,
    ) -> PoolSolve:
        """Solve one numeric instance through the pool.

        ``fingerprint`` may be passed when the caller already computed
        it (the serve queue keys requests by it); it must equal
        :meth:`fingerprint` of the problem.  ``session`` routes the
        solve through that key's carried ``(x, y, ρ)`` state instead of
        the anonymous path (sticky warm start, one step of a stream).
        """
        if session is not None:
            return self.solve_sequence(
                [problem], fingerprint=fingerprint, session=session
            )[0]
        key = fingerprint or self.fingerprint(problem)
        entry, warm, cache_hit, compile_seconds = self._get_or_create(
            key, problem
        )
        metrics = self.metrics
        with entry.lock:
            t0 = time.perf_counter()
            if warm:
                entry.solver.update_values(problem)
            x0 = y0 = None
            if self.warm_start and entry.last_iterate is not None:
                x0, y0, rho0 = entry.last_iterate
                # Resume the adapted penalty too: sessions and batch
                # passes may have moved the resident solver's rho since
                # this pattern's last anonymous solve.
                entry.solver.bind_rho(rho0)
            report = entry.solver.solve(x0=x0, y0=y0)
            solve_seconds = time.perf_counter() - t0
            entry.solves += 1
            if self.warm_start:
                entry.last_iterate = (
                    report.result.x,
                    report.result.y,
                    float(entry.solver.reference.rho),
                )
            if entry.crossings_per_iter is None:
                entry.crossings_per_iter = entry.solver.iteration_crossings()
        metrics.observe("solve", solve_seconds)
        if warm:
            metrics.inc("warm_solve_count")
            metrics.observe("warm_solve", solve_seconds)
        metrics.inc("admm_iterations", report.result.iterations)
        metrics.inc(
            "host_crossings",
            report.result.iterations * entry.crossings_per_iter,
        )
        return PoolSolve(
            fingerprint=key,
            report=report,
            warm=warm,
            cache_hit=cache_hit,
            compile_seconds=compile_seconds,
            solve_seconds=solve_seconds,
        )

    # ------------------------------------------------------------------
    def solve_sequence(
        self,
        problems: list[QPProblem],
        *,
        fingerprint: str | None = None,
        session: str | None = None,
        should_stop=None,
    ) -> list[PoolSolve]:
        """Solve an ordered parametric stream on one pinned solver.

        All steps run on the pattern's resident solver under one entry
        lock, carrying ``(x, y, ρ)`` from step to step through a
        :class:`~repro.backends.session.SolveSession`; vectors-only
        steps ride the delta bind.  With ``session`` set, the carried
        state is restored from — and saved back to — that key's
        :class:`~repro.serve.session.SessionState`, and the session
        lock is held for the whole span so concurrent requests on one
        key serialize.  ``should_stop``, when given, is polled before
        every step (the engine's deadline hook); a truthy return ends
        the sequence early with the steps solved so far.

        Returns one :class:`PoolSolve` per *completed* step, in order.
        """
        if not problems:
            return []
        key = fingerprint or self.fingerprint(problems[0])
        state = (
            self.sessions.acquire(session, key)
            if session is not None
            else None
        )
        metrics = self.metrics
        solves: list[PoolSolve] = []
        if state is not None:
            state.lock.acquire()
        try:
            entry, warm, cache_hit, compile_seconds = self._get_or_create(
                key, problems[0]
            )
            with entry.lock:
                sess = SolveSession(entry.solver)
                if state is not None and state.warm:
                    sess.restore(
                        state.x,
                        state.y,
                        state.rho,
                        a_data=state.a_data,
                        p_data=state.p_data,
                    )
                for i, problem in enumerate(problems):
                    if should_stop is not None and should_stop():
                        break
                    t0 = time.perf_counter()
                    step = sess.step(problem)
                    solve_seconds = time.perf_counter() - t0
                    entry.solves += 1
                    if entry.crossings_per_iter is None:
                        entry.crossings_per_iter = (
                            entry.solver.iteration_crossings()
                        )
                    solves.append(
                        PoolSolve(
                            fingerprint=key,
                            report=step.report,
                            # Step 0 pays any construction; later steps
                            # always ride the now-resident solver.
                            warm=warm if i == 0 else True,
                            cache_hit=cache_hit,
                            compile_seconds=(
                                compile_seconds if i == 0 else 0.0
                            ),
                            solve_seconds=solve_seconds,
                            delta_bind=step.delta_bind,
                            session_key=session,
                        )
                    )
                crossings = entry.crossings_per_iter or 0
                if state is not None:
                    state.x, state.y, state.rho = sess.x, sess.y, sess.rho
                    state.a_data = sess.last_a_data
                    state.p_data = sess.last_p_data
                    state.steps += sess.steps
                    state.delta_binds += sess.delta_binds
        finally:
            if state is not None:
                state.lock.release()
                self.sessions.touch(session)
        for solved in solves:
            metrics.observe("solve", solved.solve_seconds)
            if solved.warm:
                metrics.inc("warm_solve_count")
                metrics.observe("warm_solve", solved.solve_seconds)
            metrics.inc(
                "admm_iterations", solved.report.result.iterations
            )
            metrics.inc(
                "host_crossings",
                solved.report.result.iterations * crossings,
            )
        delta = sum(s.delta_bind for s in solves)
        if delta:
            metrics.inc("delta_binds", delta)
        if session is not None and solves:
            metrics.inc("session_solves", len(solves))
        return solves

    # ------------------------------------------------------------------
    def solve_batch(
        self,
        problems: list[QPProblem],
        *,
        fingerprint: str | None = None,
        progress=None,
        on_lane=None,
    ) -> list[PoolSolve]:
        """Solve B same-pattern instances in one batched replay pass.

        One warm solver executes all lanes through
        :meth:`MIBSolver.solve_batch` — a single lockstep pass of the
        compiled traces, per-lane results bit-identical to solo solves.
        Falls back to sequential :meth:`solve` calls when batching does
        not apply (a single problem, or the indirect variant).

        ``progress`` is forwarded to the lockstep loop (the adaptive
        controller's bail-out hook).  ``on_lane`` is called as
        ``on_lane(index, PoolSolve)`` the moment each lane finishes —
        early lanes before slow ones — so the server can answer a
        request without waiting for the whole pass.  The callback runs
        with the pool entry's lock held: it must not re-enter the
        pool.  Each lane's ``solve_seconds`` is its own elapsed time
        in the pass — what that request actually waited.

        The pass starts every lane from the warm solver's current ρ
        (``rho0``), matching the solo path whose adapted ρ persists
        across ``update_values``: without it every lane re-learns ρ
        from the configured default, and the resulting refactorization
        extracts the whole batch out of lockstep one lane at a time.
        Lane results stay bit-identical to
        ``bind_instance(problem, rho0=...)`` + ``solve_on_network()``
        at that ρ.
        """
        if not problems:
            return []
        key = fingerprint or self.fingerprint(problems[0])
        if len(problems) == 1 or self.variant != "direct":
            solves = [self.solve(p, fingerprint=key) for p in problems]
            if on_lane is not None:
                for i, solved in enumerate(solves):
                    on_lane(i, solved)
            return solves
        entry, warm, cache_hit, compile_seconds = self._get_or_create(
            key, problems[0]
        )
        metrics = self.metrics
        solver = entry.solver
        st = solver.reference.settings
        transfer_bytes = 4 * (
            problems[0].nnz + 2 * problems[0].n + 4 * problems[0].m
        )
        transfer = 2 * PCIE_LATENCY + transfer_bytes / PCIE_BANDWIDTH
        kernel_cycles = {
            k: s.cycles for k, s in solver.kernels.schedules.items()
        }
        built: dict[int, PoolSolve] = {}
        with entry.lock:
            t0 = time.perf_counter()

            def lane_done(index: int, lane) -> None:
                solved = self._wrap_lane(
                    lane,
                    key=key,
                    warm=warm,
                    cache_hit=cache_hit,
                    compile_seconds=compile_seconds,
                    solve_seconds=time.perf_counter() - t0,
                    solver=solver,
                    st=st,
                    transfer=transfer,
                    kernel_cycles=kernel_cycles,
                )
                built[index] = solved
                if on_lane is not None:
                    on_lane(index, solved)

            batch = entry.solver.solve_batch(
                list(problems),
                rho0=float(solver.reference.rho),
                progress=progress,
                on_lane=lane_done,
            )
            entry.solves += len(problems)
        metrics.inc("batched_solves")
        metrics.inc("batched_lanes", len(problems))
        metrics.observe_batch(len(problems))
        warm_lanes = len(problems) if warm else len(problems) - 1
        metrics.inc("warm_solve_count", warm_lanes)
        solves = [built[i] for i in range(len(problems))]
        for i, solved in enumerate(solves):
            metrics.observe("solve", solved.solve_seconds)
            if i < warm_lanes:
                metrics.observe("warm_solve", solved.solve_seconds)
        metrics.inc(
            "admm_iterations", sum(r.iterations for r in batch.lanes)
        )
        metrics.inc(
            "host_crossings", sum(r.host_crossings for r in batch.lanes)
        )
        return solves

    def _wrap_lane(
        self,
        lane,
        *,
        key: str,
        warm: bool,
        cache_hit: bool,
        compile_seconds: float,
        solve_seconds: float,
        solver: MIBSolver,
        st,
        transfer: float,
        kernel_cycles: dict[str, int],
    ) -> PoolSolve:
        """One batched lane's report, wrapped as a pool solve."""
        iters = lane.iterations
        checks = sum(
            1
            for i in range(1, iters + 1)
            if i % st.check_interval == 0 or i == iters
        )
        result = SolveResult(
            status=lane.status,
            x=lane.x,
            y=lane.y,
            z=lane.z,
            iterations=iters,
            objective=lane.objective,
            primal_residual=lane.primal_residual,
            dual_residual=lane.dual_residual,
            rho_updates=lane.rho_updates,
            trace=OpTrace(),
            primal_infeasibility_certificate=(
                lane.primal_infeasibility_certificate
            ),
            dual_infeasibility_certificate=(
                lane.dual_infeasibility_certificate
            ),
        )
        report = MIBSolveReport(
            result=result,
            cycles=lane.cycles,
            runtime_seconds=lane.cycles / solver.clock_hz + transfer,
            clock_hz=solver.clock_hz,
            kernel_cycles=kernel_cycles,
            kernel_invocations={
                "iter_pre": iters,
                "kkt_solve": iters,
                "iter_post": iters,
                "residuals": checks,
                "factor": 1 + lane.rho_updates,
            },
            transfer_seconds=transfer,
        )
        return PoolSolve(
            fingerprint=key,
            report=report,
            warm=warm,
            cache_hit=cache_hit,
            compile_seconds=compile_seconds,
            solve_seconds=solve_seconds,
            solo_lane=lane.solo,
            bailed_lane=lane.bailed,
        )

    # ------------------------------------------------------------------
    def _get_or_create(
        self, key: str, problem: QPProblem
    ) -> tuple[_PoolEntry, bool, bool, float]:
        """Look up or build the entry for ``key``.

        Returns ``(entry, warm, cache_hit, compile_seconds)``.  The
        per-key build lock makes concurrent misses on one pattern
        compile once: the losers block, then find the winner's entry.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.metrics.inc("pool_hits")
                return entry, True, True, 0.0
            build_lock = self._building.setdefault(key, threading.Lock())
        with build_lock:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.metrics.inc("pool_hits")
                    return entry, True, True, 0.0
            t0 = time.perf_counter()
            solver = MIBSolver(
                problem,
                variant=self.variant,
                c=self.c,
                settings=self.settings,
                cache=self.cache,
                execution=self.execution,
                array_backend=self.backend_policy,
            )
            compile_seconds = time.perf_counter() - t0
            if solver.cache_key != key:
                raise RuntimeError(
                    "pool fingerprint does not match the solver's cache key"
                )
            entry = _PoolEntry(solver=solver)
            with self._lock:
                self._entries[key] = entry
                self._entries.move_to_end(key)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.metrics.inc("pool_evictions")
                self._building.pop(key, None)
            self.metrics.inc("pool_misses")
            if not solver.cache_hit:
                self.metrics.inc("compile_count")
                self.metrics.observe("compile", compile_seconds)
            return entry, False, solver.cache_hit, compile_seconds
