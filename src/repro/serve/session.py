"""Server-side session state: carried iterates keyed by client session.

The serve tier's sticky warm-start store.  A client that tags its
requests with a ``session`` key gets its own carried ``(x, y, ρ)``
triple — restored onto the pattern's resident solver before each step,
saved back after — so consecutive solves of a parametric stream warm
start from *that stream's* trajectory, not from whatever unrelated
request last touched the pattern (the distinction the pool-level
``warm_start`` flag cannot make).

Sessions are advisory state, not correctness state: losing one (TTL
expiry, capacity eviction, shard respawn) degrades the next step to a
cold start with the configured initial ρ — bitwise the same solve a
fresh session would run.  That is what makes the shard tier's
failure story safe: a died worker's sessions are simply gone, the
client's next request gets a fresh cold session (or a fast 503 while
the shard respawns) and the stream re-warms.

Locking: :meth:`SessionStore.acquire` returns the state object; the
caller holds ``state.lock`` for the whole read-state → solve →
write-state span, serializing concurrent requests on one session key
(no interleaved ``update_values`` between restore and save).  The
session lock is taken strictly *outside* the pool's entry lock.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from .metrics import ServeMetrics

__all__ = ["SessionState", "SessionStore"]


@dataclass
class SessionState:
    """One client session's carried state (all guarded by ``lock``)."""

    key: str
    fingerprint: str
    lock: threading.Lock = field(default_factory=threading.Lock)
    x: np.ndarray | None = None
    y: np.ndarray | None = None
    rho: float | None = None
    # Matrix values of the stream's previous instance — the session's
    # continuation classifier (carried state applies only to
    # vectors-only continuations; see repro.backends.session).
    a_data: np.ndarray | None = None
    p_data: np.ndarray | None = None
    steps: int = 0
    delta_binds: int = 0
    created_at: float = 0.0
    last_used: float = 0.0

    @property
    def warm(self) -> bool:
        return self.x is not None


class SessionStore:
    """Thread-safe TTL + LRU-capacity map of session states.

    Expiry is lazy: every :meth:`acquire` sweeps states idle past
    ``ttl_s`` (skipping any whose lock is held — an in-flight solve is
    not idle) and evicts least-recently-used beyond ``capacity``.
    ``time_fn`` is injectable so churn tests drive the clock.
    """

    def __init__(
        self,
        *,
        capacity: int = 256,
        ttl_s: float = 300.0,
        metrics: ServeMetrics | None = None,
        time_fn=time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("session capacity must be >= 1")
        if ttl_s <= 0:
            raise ValueError("session ttl must be positive")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self._time = time_fn
        self._states: OrderedDict[str, SessionState] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._states)

    # ------------------------------------------------------------------
    def acquire(self, key: str, fingerprint: str) -> SessionState:
        """The session for ``key``, created (or reset) as needed.

        A key reused with a different pattern fingerprint starts over:
        the carried iterate of another pattern has the wrong shape and
        the wrong meaning.  The caller must take ``state.lock`` before
        touching the carried fields.
        """
        now = self._time()
        with self._lock:
            self._sweep_expired(now)
            state = self._states.get(key)
            if state is not None and state.fingerprint != fingerprint:
                # Same key, new pattern: this is a new stream.
                self._states.pop(key)
                self.metrics.inc("session_resets")
                state = None
            if state is None:
                state = SessionState(
                    key=key,
                    fingerprint=fingerprint,
                    created_at=now,
                    last_used=now,
                )
                self._states[key] = state
                self.metrics.inc("session_created")
                while len(self._states) > self.capacity:
                    victim_key = next(iter(self._states))
                    if self._states[victim_key].lock.locked():
                        # In-flight; rotate it to the fresh end rather
                        # than yanking state out from under its solve.
                        self._states.move_to_end(victim_key)
                        continue
                    self._states.popitem(last=False)
                    self.metrics.inc("session_evictions")
            state.last_used = now
            self._states.move_to_end(key)
            return state

    def touch(self, key: str) -> None:
        """Refresh recency after a long-running solve finishes."""
        now = self._time()
        with self._lock:
            state = self._states.get(key)
            if state is not None:
                state.last_used = now
                self._states.move_to_end(key)

    def sweep(self) -> int:
        """Evict every expired idle session; returns the count."""
        with self._lock:
            before = len(self._states)
            self._sweep_expired(self._time())
            return before - len(self._states)

    def _sweep_expired(self, now: float) -> None:
        # Caller holds self._lock.
        dead = [
            key
            for key, state in self._states.items()
            if now - state.last_used > self.ttl_s and not state.lock.locked()
        ]
        for key in dead:
            self._states.pop(key, None)
        if dead:
            self.metrics.inc("session_evictions", len(dead))

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Observability block for ``/v1/metrics``."""
        with self._lock:
            states = list(self._states.values())
            return {
                "active": len(states),
                "capacity": self.capacity,
                "ttl_s": self.ttl_s,
                "steps_total": sum(s.steps for s in states),
                "delta_binds_total": sum(s.delta_binds for s in states),
            }
