"""The serve tier's solve engine: queue drain, batching, dispatch.

Everything between "a :class:`~repro.serve.queue.SolveRequest` was
admitted" and "its response was published" lives here — worker
threads draining the :class:`~repro.serve.queue.RequestQueue` through
the :class:`~repro.serve.pool.SolverPool` under the
:class:`~repro.serve.controller.BatchController`'s policy, with
per-request deadlines, batched dispatch, early per-lane publication
and the write-once response discipline.

The engine is transport-agnostic: the HTTP front-end
(:class:`~repro.serve.server.ServeServer`) feeds it requests parsed
from sockets, and a shard worker process (:mod:`repro.shard.worker`)
feeds it requests decoded from shared-memory slabs.  Both see the
same execution stack — warm pool, adaptive batching, fused replay —
because it *is* the same object.
"""

from __future__ import annotations

import threading
import time

from ..solver import SolverStatus
from .controller import BatchController
from .metrics import ServeMetrics
from .pool import SolverPool
from .queue import DispatchBatch, RequestQueue, SolveRequest

__all__ = ["SolveEngine"]


class SolveEngine:
    """Worker threads draining one request queue through one pool.

    ``workers=0`` starts no drain loop (test hook: requests queue up
    and time out unless drained manually).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        pool: SolverPool | None = None,
        queue_size: int = 64,
        max_batch: int = 16,
        batch_policy: str = "greedy",
        controller: BatchController | None = None,
        **pool_kwargs,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.pool = pool if pool is not None else SolverPool(**pool_kwargs)
        self.metrics: ServeMetrics = self.pool.metrics
        self.queue = RequestQueue(maxsize=queue_size)
        self.max_batch = max_batch
        # The batching policy layer: decides which lanes share a batch
        # (``max_batch`` stays the hard cap) and when a pass bails out
        # of lockstep.  ``batch_policy="greedy"`` reproduces the
        # pre-controller behaviour exactly.
        self.controller = (
            controller
            if controller is not None
            else BatchController(policy=batch_policy, metrics=self.metrics)
        )
        self.workers = workers
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    def start(self) -> "SolveEngine":
        for i in range(self.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            worker.start()
            self._threads.append(worker)
        return self

    def stop(self) -> None:
        """Stop admissions, answer stragglers 503, join the workers."""
        self.queue.close()
        for request in self.queue.drain():
            self._finish(
                request,
                503,
                {"status": "rejected", "detail": "server shutting down"},
            )
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()

    def submit(self, request: SolveRequest) -> None:
        """Admit one request (raises ``QueueFullError`` on backpressure)."""
        self.queue.submit(request)

    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self.queue.next_batch(
                max_batch=self.max_batch,
                rider=self.controller.rider,
                window=self.controller.dispatch_window,
                cap=lambda head: self.controller.max_batch_for(
                    head.fingerprint, self.max_batch
                ),
            )
            if batch is None:  # queue closed
                return
            for request in batch.expired:
                # Swept at pop time: the deadline passed while queued,
                # so the request never occupies a solve lane.
                self.metrics.inc("expired_at_pop")
                self._timeout_queued(request)
            if len(batch) > 1:
                self.metrics.inc("coalesced_batches")
                self.metrics.inc("coalesced_requests", len(batch) - 1)
                self._process_batch(batch)
            elif batch:
                self._process(batch[0])

    def _timeout_queued(self, request: SolveRequest) -> None:
        queue_wait = time.monotonic() - request.enqueued_at
        self.metrics.observe("queue_wait", queue_wait)
        self._finish(
            request,
            504,
            {
                "status": "timeout",
                "detail": "deadline expired while queued",
                "queue_seconds": queue_wait,
            },
        )

    def _ok_payload(
        self, solved, queue_wait: float, *, batched: bool, batch_lanes: int
    ) -> dict:
        result = solved.report.result
        return {
            "status": "ok",
            "fingerprint": solved.fingerprint,
            "warm": solved.warm,
            "delta_bind": solved.delta_bind,
            "session": solved.session_key,
            "cache_hit": solved.cache_hit,
            "batched": batched,
            "batch_lanes": batch_lanes,
            "queue_seconds": queue_wait,
            "compile_seconds": solved.compile_seconds,
            "solve_seconds": solved.solve_seconds,
            "cycles": solved.report.cycles,
            "runtime_seconds": solved.report.runtime_seconds,
            "solved": result.status is SolverStatus.SOLVED,
            "result": result.to_dict(),
        }

    def _process(self, request: SolveRequest) -> None:
        queue_wait = time.monotonic() - request.enqueued_at
        self.metrics.observe("queue_wait", queue_wait)
        if request.expired():
            self._finish(
                request,
                504,
                {
                    "status": "timeout",
                    "detail": "deadline expired while queued",
                    "queue_seconds": queue_wait,
                },
            )
            return
        if request.steps is not None:
            self._process_sequence(request, queue_wait)
        elif request.scenarios is not None:
            self._process_scenarios(request, queue_wait)
        else:
            self._solve_solo(request, queue_wait)

    def _solve_solo(self, request: SolveRequest, queue_wait: float) -> None:
        cpu_t0 = time.thread_time()
        try:
            solved = self.pool.solve(
                request.problem,
                fingerprint=request.fingerprint,
                session=request.session_key,
            )
        except Exception as exc:  # a poisoned request must not kill workers
            self._finish(
                request,
                500,
                {"status": "error", "detail": f"{type(exc).__name__}: {exc}"},
            )
            return
        if solved.warm and request.session_key is None:
            # Only warm solves inform the cost model: a cold solve's
            # cost is dominated by construction, not the pattern's
            # per-instance solve economics.  Priced in this worker
            # thread's CPU time so concurrent handler threads don't
            # charge their interpreter contention to the solve.
            self.controller.observe_solo(
                request.fingerprint,
                seconds=time.thread_time() - cpu_t0,
                iterations=solved.report.result.iterations,
            )
        self._finish(
            request,
            200,
            self._ok_payload(solved, queue_wait, batched=False, batch_lanes=1),
        )

    def _step_payload(self, solved) -> dict:
        """The per-step/per-lane block inside a streaming response."""
        result = solved.report.result
        return {
            "warm": solved.warm,
            "delta_bind": solved.delta_bind,
            "compile_seconds": solved.compile_seconds,
            "solve_seconds": solved.solve_seconds,
            "cycles": solved.report.cycles,
            "solved": result.status is SolverStatus.SOLVED,
            "result": result.to_dict(),
        }

    def _process_sequence(self, request: SolveRequest, queue_wait: float) -> None:
        """Run an ordered step list on one session, answer once.

        The deadline is honoured *between* steps: ``should_stop`` is
        the request's own expiry check, so an expired sequence stops
        after the step in flight and answers 504 carrying the steps it
        did complete — the client replays only the tail.
        """
        self.metrics.inc("sequence_requests")
        try:
            solves = self.pool.solve_sequence(
                request.steps,
                fingerprint=request.fingerprint,
                session=request.session_key,
                should_stop=request.expired,
            )
        except Exception as exc:
            self._finish(
                request,
                500,
                {"status": "error", "detail": f"{type(exc).__name__}: {exc}"},
            )
            return
        self.metrics.inc("sequence_steps", len(solves))
        steps = [self._step_payload(s) for s in solves]
        if len(solves) < len(request.steps):
            self._finish(
                request,
                504,
                {
                    "status": "timeout",
                    "detail": "deadline expired mid-sequence",
                    "queue_seconds": queue_wait,
                    "steps_requested": len(request.steps),
                    "steps_completed": len(solves),
                    "steps": steps,
                },
            )
            return
        self._finish(
            request,
            200,
            {
                "status": "ok",
                "fingerprint": request.fingerprint,
                "session": request.session_key,
                "queue_seconds": queue_wait,
                "steps_completed": len(solves),
                "steps": steps,
            },
        )

    def _process_scenarios(self, request: SolveRequest, queue_wait: float) -> None:
        """Fan N perturbed variants of one pattern onto batch lanes."""
        self.metrics.inc("scenario_requests")
        try:
            solves = self.pool.solve_batch(
                request.scenarios, fingerprint=request.fingerprint
            )
        except Exception as exc:
            self._finish(
                request,
                500,
                {"status": "error", "detail": f"{type(exc).__name__}: {exc}"},
            )
            return
        self.metrics.inc("scenario_lanes", len(solves))
        self._finish(
            request,
            200,
            {
                "status": "ok",
                "fingerprint": request.fingerprint,
                "queue_seconds": queue_wait,
                "lanes": len(solves),
                "scenarios": [self._step_payload(s) for s in solves],
            },
        )

    def _process_batch(self, batch: DispatchBatch) -> None:
        """Dispatch a coalesced batch as one batched pool solve.

        Per-request deadlines hold inside the batch: lanes already
        expired at dispatch are answered 504 and dropped before the
        solve, so they never displace or poison their siblings, and a
        failure answers only the live lanes that were actually in the
        pass.
        """
        now = time.monotonic()
        live: list[SolveRequest] = []
        waits: dict[int, float] = {}
        for request in batch:
            queue_wait = now - request.enqueued_at
            self.metrics.observe("queue_wait", queue_wait)
            if request.expired(now):
                self._finish(
                    request,
                    504,
                    {
                        "status": "timeout",
                        "detail": "deadline expired while queued",
                        "queue_seconds": queue_wait,
                    },
                )
            else:
                live.append(request)
                waits[request.request_id] = queue_wait
        if not live:
            return
        if len(live) == 1:
            request = live[0]
            self._solve_solo(request, waits[request.request_id])
            return
        # Bail-out budget: the tightest live deadline bounds how long a
        # pass may chase stragglers before splitting them out.
        remaining = [
            r for r in (req.remaining(now) for req in live) if r is not None
        ]
        progress = self.controller.make_progress(
            batch.fingerprint,
            deadline_remaining=min(remaining) if remaining else None,
        )
        published: set[int] = set()
        pass_cpu_t0 = time.thread_time()

        def lane_done(index: int, solved) -> None:
            # Called at harvest time (fast lanes before slow ones, under
            # the pool entry's lock): answer the request now instead of
            # at the end of the pass — the controller's p50 lever.
            published.add(index)
            request = live[index]
            self._finish(
                request,
                200,
                self._ok_payload(
                    solved,
                    waits[request.request_id],
                    batched=True,
                    batch_lanes=len(live),
                ),
            )

        try:
            solves = self.pool.solve_batch(
                [r.problem for r in live],
                fingerprint=batch.fingerprint,
                progress=progress,
                on_lane=lane_done,
            )
        except Exception as exc:
            for index, request in enumerate(live):
                if index not in published:
                    self._finish(
                        request,
                        500,
                        {
                            "status": "error",
                            "detail": f"{type(exc).__name__}: {exc}",
                        },
                    )
            return
        pass_cpu = time.thread_time() - pass_cpu_t0
        # Lanes answered before the slowest lane finished — the wait
        # the old publish-at-pass-end behaviour would have added.
        slowest = max(s.solve_seconds for s in solves)
        early = sum(1 for s in solves if s.solve_seconds < slowest)
        if early:
            self.metrics.inc("early_responses", early)
        # Backstop: publish any lane the callback missed (sequential
        # fallback paths always invoke it, but stay defensive).
        for index, (request, solved) in enumerate(zip(live, solves)):
            if index not in published:
                self._finish(
                    request,
                    200,
                    self._ok_payload(
                        solved,
                        waits[request.request_id],
                        batched=True,
                        batch_lanes=len(live),
                    ),
                )
        if self.pool.variant == "direct":
            # Feed the cost model: per-lane iterations, pass cost in
            # this worker's CPU time (comparable to the solo pricing —
            # wall time would bill the pass for the handler threads it
            # wakes with its own early responses), rho fallbacks vs
            # controller bail-outs.
            self.controller.observe_pass(
                batch.fingerprint,
                lanes=len(live),
                seconds=pass_cpu,
                lane_iterations=[
                    s.report.result.iterations for s in solves
                ],
                solo_lanes=sum(s.solo_lane for s in solves),
                bailed_lanes=sum(s.bailed_lane for s in solves),
            )

    def _finish(
        self, request: SolveRequest, status_code: int, payload: dict
    ) -> None:
        """Publish a response exactly once and account it."""
        if not request.respond(status_code, payload):
            # The front-end already answered (deadline backstop); a
            # completed solve arriving late is recorded as a timeout
            # casualty, not a served response.
            if status_code == 200:
                self.metrics.inc("timeouts")
            return
        if status_code == 200:
            self.metrics.inc("responses_ok")
        elif status_code == 504:
            self.metrics.inc("timeouts")
        elif status_code == 503:
            self.metrics.inc("rejected")
        else:
            self.metrics.inc("responses_error")
        self.metrics.observe("total", time.monotonic() - request.enqueued_at)
