"""``repro.serve`` — QP-as-a-service on top of the compiled backend.

The paper's workload is compile-once/solve-many: one sparsity pattern,
a stream of numeric instances (MPC loops, portfolio rebalancing,
per-request model fits).  This package turns the repo's batch
machinery — the pattern-keyed :class:`~repro.compiler.ScheduleCache`
and the cheap ``update_values`` rebind — into a long-running service:

* :mod:`~repro.serve.pool` — warm :class:`~repro.backends.MIBSolver`
  instances keyed by pattern fingerprint (LRU, thread-safe);
* :mod:`~repro.serve.queue` — bounded admission with same-pattern
  request coalescing and per-request deadlines;
* :mod:`~repro.serve.controller` — the adaptive batching policy: a
  per-pattern cost model learned online decides batch caps, who rides
  together (value bucketing) and mid-flight bail-out;
* :mod:`~repro.serve.server` / :mod:`~repro.serve.client` — the
  stdlib HTTP/JSON front-end and its Python client;
* :mod:`~repro.serve.metrics` — live counters and latency histograms
  (``/v1/metrics``);
* :mod:`~repro.serve.session` — sticky warm-start sessions: carried
  ``(x, y, ρ)`` per client session key, behind ``session=`` on
  ``/v1/solve``, the ordered ``/v1/sequence`` endpoint and the
  ``/v1/scenarios`` batch fan-out (DESIGN.md §5.8).

Start it with ``python -m repro serve`` or embed it::

    from repro.serve import ServeClient, ServeServer

    with ServeServer(port=0, workers=2, c=16) as server:
        client = ServeClient(port=server.port)
        response = client.solve(problem, timeout_s=10.0)
        assert response.solved
"""

from .client import ServeClient, SolveResponse, StreamResponse
from .controller import POLICIES, BatchController, PatternStats, value_distance
from .metrics import LatencyHistogram, ServeMetrics
from .pool import PoolSolve, SolverPool
from .queue import DispatchBatch, QueueFullError, RequestQueue, SolveRequest
from .server import ServeServer
from .session import SessionState, SessionStore

__all__ = [
    "BatchController",
    "DispatchBatch",
    "LatencyHistogram",
    "PatternStats",
    "POLICIES",
    "PoolSolve",
    "QueueFullError",
    "RequestQueue",
    "ServeClient",
    "ServeMetrics",
    "ServeServer",
    "SessionState",
    "SessionStore",
    "SolveRequest",
    "SolveResponse",
    "SolverPool",
    "StreamResponse",
    "value_distance",
]
