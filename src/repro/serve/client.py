"""Small stdlib HTTP client for the serve API.

Used by the test suite, the CI smoke job and the closed-loop load
generator (``benchmarks/bench_serve.py``); also the reference for
talking to the service from any other language — the whole protocol is
three JSON endpoints.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass

import numpy as np

from ..io import encode_bounds, problem_to_dict
from ..solver import QPProblem, SolveResult

__all__ = ["ServeClient", "SolveResponse", "StreamResponse"]

# Transport failures worth one retry: the server (or a shard worker
# restart behind it) dropped the connection without answering.  Safe
# only for idempotent requests — a solve is a pure function of the
# problem document, and the GET endpoints are reads.
_RETRYABLE = (
    ConnectionResetError,
    BrokenPipeError,
    http.client.RemoteDisconnected,
)


@dataclass(frozen=True)
class SolveResponse:
    """One ``POST /v1/solve`` exchange, decoded.

    ``status`` is the service-level outcome (``"ok"``, ``"timeout"``,
    ``"rejected"``, ``"error"``); ``result`` is the decoded
    :class:`~repro.solver.SolveResult` when the solve ran, ``None``
    otherwise.  ``raw`` keeps the full response document.
    """

    http_status: int
    status: str
    raw: dict
    result: SolveResult | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def solved(self) -> bool:
        return self.result is not None and self.result.solved

    @property
    def warm(self) -> bool:
        return bool(self.raw.get("warm", False))

    @property
    def fingerprint(self) -> str | None:
        return self.raw.get("fingerprint")


@dataclass(frozen=True)
class StreamResponse:
    """One ``/v1/sequence`` or ``/v1/scenarios`` exchange, decoded.

    ``results`` holds the decoded per-step (per-lane) results, in
    order, for every step the server completed — a mid-sequence 504
    still carries the completed prefix, so ``len(results)`` may be
    shorter than the request.
    """

    http_status: int
    status: str
    raw: dict
    results: list[SolveResult]

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def steps(self) -> list[dict]:
        return self.raw.get("steps") or self.raw.get("scenarios") or []

    @property
    def delta_binds(self) -> int:
        return sum(1 for step in self.steps if step.get("delta_bind"))


def _step_override(base: QPProblem, step: QPProblem) -> dict:
    """The wire-form override turning ``base`` into ``step``.

    Vectors are always sent (they are small and almost always what
    changed); matrix values ride along only when they actually differ —
    an override without ``a_data``/``p_data`` inherits the base arrays
    *bitwise* server-side, which is what keeps the delta-bind fast path
    reachable through the JSON transport.
    """
    override: dict = {
        "q": step.q.tolist(),
        "l": encode_bounds(step.l),
        "u": encode_bounds(step.u),
    }
    if not np.array_equal(step.a.data, base.a.data):
        override["a_data"] = step.a.data.tolist()
    if not np.array_equal(step.p_upper.data, base.p_upper.data):
        override["p_data"] = step.p_upper.data.tolist()
    return override


class ServeClient:
    """Talk to one serve instance (``http://host:port``)."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 8000,
        base_url: str | None = None,
    ) -> None:
        self.base_url = (base_url or f"http://{host}:{port}").rstrip("/")

    # ------------------------------------------------------------------
    def _request(
        self,
        path: str,
        *,
        body: dict | None = None,
        timeout: float = 60.0,
        retry: bool = True,
    ) -> tuple[int, dict]:
        """One HTTP exchange, with a single jittered retry on a dropped
        connection (``retry=False`` for non-idempotent callers)."""
        url = f"{self.base_url}{path}"
        data = json.dumps(body).encode() if body is not None else None
        for attempt in (0, 1):
            request = urllib.request.Request(
                url,
                data=data,
                headers={"Content-Type": "application/json"} if data else {},
                method="POST" if data is not None else "GET",
            )
            try:
                with urllib.request.urlopen(request, timeout=timeout) as resp:
                    return resp.status, json.loads(resp.read())
            except urllib.error.HTTPError as exc:
                # Structured error responses (400/503/504) carry JSON too.
                try:
                    payload = json.loads(exc.read())
                except Exception:
                    payload = {"status": "error", "detail": str(exc)}
                return exc.code, payload
            except _RETRYABLE:
                if not retry or attempt:
                    raise
            except urllib.error.URLError as exc:
                if not retry or attempt or not isinstance(
                    exc.reason, _RETRYABLE
                ):
                    raise
            # Jitter so a burst of clients hitting one dropped worker
            # doesn't retry in lockstep.
            time.sleep(random.uniform(0.05, 0.15))
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    def solve(
        self,
        problem: QPProblem,
        *,
        timeout_s: float | None = None,
        session: str | None = None,
    ) -> SolveResponse:
        """Submit one QP; blocks until the response (or its timeout).

        ``session`` pins the solve to a server-side session: the warm
        start restores that session's carried iterate instead of
        whatever request last touched the pattern.
        """
        body: dict = {"problem": problem_to_dict(problem)}
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        if session is not None:
            body["session"] = session
        http_status, payload = self._request(
            "/v1/solve",
            body=body,
            # The socket outlives the service deadline: the server
            # answers 504 itself; the margin only covers transport.
            timeout=(timeout_s or 30.0) + 10.0,
        )
        result = None
        if payload.get("status") == "ok" and "result" in payload:
            result = SolveResult.from_dict(payload["result"])
        return SolveResponse(
            http_status=http_status,
            status=str(payload.get("status", "error")),
            raw=payload,
            result=result,
        )

    def _stream(
        self,
        path: str,
        field: str,
        base: QPProblem,
        variants: list[QPProblem],
        *,
        session: str | None,
        timeout_s: float | None,
    ) -> StreamResponse:
        body: dict = {
            "problem": problem_to_dict(base),
            field: [_step_override(base, v) for v in variants],
        }
        if session is not None:
            body["session"] = session
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        http_status, payload = self._request(
            path, body=body, timeout=(timeout_s or 30.0) + 10.0
        )
        results = [
            SolveResult.from_dict(block["result"])
            for block in (payload.get("steps") or payload.get("scenarios") or [])
            if "result" in block
        ]
        return StreamResponse(
            http_status=http_status,
            status=str(payload.get("status", "error")),
            raw=payload,
            results=results,
        )

    def sequence(
        self,
        base: QPProblem,
        steps: list[QPProblem],
        *,
        session: str | None = None,
        timeout_s: float | None = None,
    ) -> StreamResponse:
        """Run ordered same-pattern steps on one session, one response.

        Each step is diffed against ``base`` client-side so unchanged
        matrix values never cross the wire (and stay bitwise identical
        server-side — the delta-bind condition).
        """
        return self._stream(
            "/v1/sequence", "steps", base, steps,
            session=session, timeout_s=timeout_s,
        )

    def scenarios(
        self,
        base: QPProblem,
        variants: list[QPProblem],
        *,
        timeout_s: float | None = None,
    ) -> StreamResponse:
        """Fan N same-pattern variants onto the server's batch lanes."""
        return self._stream(
            "/v1/scenarios", "scenarios", base, variants,
            session=None, timeout_s=timeout_s,
        )

    def health(self) -> dict:
        return self._request("/v1/health")[1]

    def metrics(self) -> dict:
        return self._request("/v1/metrics")[1]
