"""Bounded request queue with same-pattern coalescing.

Admission and dispatch policy between the HTTP front-end and the pool
workers:

* **bounded** — ``submit`` raises :class:`QueueFullError` once
  ``maxsize`` requests are pending; the server translates that into a
  structured ``REJECTED`` response (backpressure instead of unbounded
  latency).
* **coalescing** — :meth:`next_batch` pops the oldest request and
  pulls every other pending request *sharing its pattern fingerprint*
  (up to ``max_batch``) into the same batch.  The worker dispatches
  the batch consecutively to one warm solver, so a burst of
  same-pattern traffic pays construction at most once and every
  follow-up rides the ``update_values`` rebind and the already-lowered
  replay traces.  Requests that are not coalesced keep strict FIFO
  order.
* **deadlines** — each request carries an absolute monotonic deadline;
  :meth:`SolveRequest.expired` lets workers discard requests whose
  client has already been answered with ``TIMEOUT``.

The queue itself is transport-agnostic (it stores
:class:`SolveRequest` objects, not HTTP anything) so it is directly
unit-testable and reusable by the load generator.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..solver import QPProblem

__all__ = ["DispatchBatch", "QueueFullError", "RequestQueue", "SolveRequest"]

_REQUEST_IDS = itertools.count(1)


class QueueFullError(RuntimeError):
    """Raised by :meth:`RequestQueue.submit` under backpressure."""


@dataclass
class SolveRequest:
    """One in-flight solve: payload, routing key, deadline, response.

    The response slot is write-once (``respond``): whichever side wins
    the race — a worker finishing the solve, or the waiting front-end
    declaring a timeout — publishes, and the loser's attempt is a
    no-op.  ``done`` is set after publication.
    """

    problem: QPProblem
    fingerprint: str
    deadline: float | None = None  # absolute time.monotonic() deadline
    enqueued_at: float = field(default_factory=time.monotonic)
    request_id: int = field(default_factory=lambda: next(_REQUEST_IDS))
    done: threading.Event = field(default_factory=threading.Event)
    status_code: int | None = None
    response: dict | None = None
    _publish_lock: threading.Lock = field(default_factory=threading.Lock)

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) >= self.deadline

    def remaining(self, now: float | None = None) -> float | None:
        """Seconds until the deadline (``None`` when unbounded)."""
        if self.deadline is None:
            return None
        return self.deadline - (now if now is not None else time.monotonic())

    def respond(self, status_code: int, payload: dict) -> bool:
        """Publish the response; ``False`` if one was already published."""
        with self._publish_lock:
            if self.done.is_set():
                return False
            self.status_code = status_code
            self.response = payload
            self.done.set()
            return True


class DispatchBatch(list):
    """A coalesced batch: the live same-fingerprint requests (as list
    elements) plus the requests found already expired at pop time.

    ``expired`` requests never occupy a solve lane — the worker answers
    them with ``TIMEOUT`` immediately.  ``fingerprint`` is the batch's
    common pattern key (``""`` when the sweep found only expired
    requests and the batch is empty).
    """

    def __init__(
        self,
        requests: list[SolveRequest] = (),
        *,
        fingerprint: str = "",
        expired: list[SolveRequest] | None = None,
    ) -> None:
        super().__init__(requests)
        self.fingerprint = fingerprint
        self.expired: list[SolveRequest] = expired or []


class RequestQueue:
    """Thread-safe bounded FIFO with fingerprint coalescing."""

    def __init__(self, *, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._items: deque[SolveRequest] = deque()
        self._cond = threading.Condition()
        self._closed = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    # ------------------------------------------------------------------
    def submit(self, request: SolveRequest) -> None:
        """Enqueue or raise :class:`QueueFullError` (admission control)."""
        with self._cond:
            if self._closed:
                raise QueueFullError("queue is closed")
            if len(self._items) >= self.maxsize:
                raise QueueFullError(
                    f"queue full ({self.maxsize} requests pending)"
                )
            self._items.append(request)
            self._cond.notify()

    def next_batch(
        self, *, max_batch: int = 8, timeout: float | None = None
    ) -> DispatchBatch | None:
        """Dequeue the oldest live request plus same-pattern riders.

        Blocks until a request is available, the queue closes
        (returns ``None``) or ``timeout`` elapses (returns an empty
        batch).  The batch is ordered oldest-first and shares one
        fingerprint (exposed as ``batch.fingerprint``).  Requests whose
        deadline has already passed never occupy a lane: they are swept
        into ``batch.expired`` — both expired heads and expired riders
        that would otherwise have coalesced — for the worker to answer
        with ``TIMEOUT`` without displacing live work.
        """
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        with self._cond:
            expired: list[SolveRequest] = []
            while True:
                now = time.monotonic()
                while self._items and self._items[0].expired(now):
                    expired.append(self._items.popleft())
                if self._items:
                    break
                if expired:
                    # Nothing live, but the sweep found work to fail
                    # fast — report it rather than blocking.
                    return DispatchBatch(expired=expired)
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return DispatchBatch()
            head = self._items.popleft()
            batch = DispatchBatch(
                [head], fingerprint=head.fingerprint, expired=expired
            )
            if len(batch) < max_batch and self._items:
                now = time.monotonic()
                keep: deque[SolveRequest] = deque()
                for req in self._items:
                    if (
                        len(batch) < max_batch
                        and req.fingerprint == head.fingerprint
                    ):
                        if req.expired(now):
                            batch.expired.append(req)
                        else:
                            batch.append(req)
                    else:
                        keep.append(req)
                self._items = keep
            return batch

    def close(self) -> None:
        """Stop admissions and wake every blocked consumer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> list[SolveRequest]:
        """Remove and return everything still pending (shutdown path)."""
        with self._cond:
            pending = list(self._items)
            self._items.clear()
            return pending
