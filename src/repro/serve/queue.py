"""Bounded request queue with same-pattern coalescing.

Admission and dispatch policy between the HTTP front-end and the pool
workers:

* **bounded** — ``submit`` raises :class:`QueueFullError` once
  ``maxsize`` requests are pending; the server translates that into a
  structured ``REJECTED`` response (backpressure instead of unbounded
  latency).
* **coalescing** — :meth:`next_batch` pops the oldest request and
  pulls every other pending request *sharing its pattern fingerprint*
  (up to ``max_batch``) into the same batch.  The worker dispatches
  the batch consecutively to one warm solver, so a burst of
  same-pattern traffic pays construction at most once and every
  follow-up rides the ``update_values`` rebind and the already-lowered
  replay traces.  Requests that are not coalesced keep strict FIFO
  order.  An optional ``rider`` hook (the adaptive batching
  controller's bucketing policy) can veto individual ride-alongs;
  vetoed requests stay queued in order and head their own batches.
* **deadlines** — each request carries an absolute monotonic deadline;
  :meth:`SolveRequest.expired` lets workers discard requests whose
  client has already been answered with ``TIMEOUT``.

The queue itself is transport-agnostic (it stores
:class:`SolveRequest` objects, not HTTP anything) so it is directly
unit-testable and reusable by the load generator.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..solver import QPProblem

__all__ = ["DispatchBatch", "QueueFullError", "RequestQueue", "SolveRequest"]

_REQUEST_IDS = itertools.count(1)


class QueueFullError(RuntimeError):
    """Raised by :meth:`RequestQueue.submit` under backpressure."""


@dataclass
class SolveRequest:
    """One in-flight solve: payload, routing key, deadline, response.

    The response slot is write-once (``respond``): whichever side wins
    the race — a worker finishing the solve, or the waiting front-end
    declaring a timeout — publishes, and the loser's attempt is a
    no-op.  ``done`` is set after publication.

    ``on_done``, when set, is invoked exactly once with the request
    after its response publishes — the seam a shard worker uses to
    forward the response over its transport instead of (only) waking a
    local waiter.  It runs on the publishing thread and must not
    block.
    """

    problem: QPProblem
    fingerprint: str
    deadline: float | None = None  # absolute time.monotonic() deadline
    enqueued_at: float = field(default_factory=time.monotonic)
    request_id: int = field(default_factory=lambda: next(_REQUEST_IDS))
    done: threading.Event = field(default_factory=threading.Event)
    status_code: int | None = None
    response: dict | None = None
    on_done: object | None = None  # callable(SolveRequest) | None
    # Streaming extensions (see repro.serve.session / DESIGN.md §5.8):
    # a sticky warm-start key, an ordered step list (/v1/sequence;
    # ``problem`` is then steps[0], kept for routing/registration), or
    # a scenario fan-out (/v1/scenarios; ``problem`` is the base).
    session_key: str | None = None
    steps: list | None = None  # list[QPProblem] | None
    scenarios: list | None = None  # list[QPProblem] | None
    _publish_lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def streaming(self) -> bool:
        """Stateful or multi-solve requests dispatch alone: they hold
        session state or a whole pass, so they neither ride along in a
        coalesced batch nor accept riders."""
        return (
            self.session_key is not None
            or self.steps is not None
            or self.scenarios is not None
        )

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) >= self.deadline

    def remaining(self, now: float | None = None) -> float | None:
        """Seconds until the deadline (``None`` when unbounded)."""
        if self.deadline is None:
            return None
        return self.deadline - (now if now is not None else time.monotonic())

    def respond(self, status_code: int, payload: dict) -> bool:
        """Publish the response; ``False`` if one was already published."""
        with self._publish_lock:
            if self.done.is_set():
                return False
            self.status_code = status_code
            self.response = payload
            self.done.set()
        if self.on_done is not None:
            self.on_done(self)
        return True


class DispatchBatch(list):
    """A coalesced batch: the live same-fingerprint requests (as list
    elements) plus the requests found already expired at pop time.

    ``expired`` requests never occupy a solve lane — the worker answers
    them with ``TIMEOUT`` immediately.  ``fingerprint`` is the batch's
    common pattern key (``""`` when the sweep found only expired
    requests and the batch is empty).
    """

    def __init__(
        self,
        requests: list[SolveRequest] = (),
        *,
        fingerprint: str = "",
        expired: list[SolveRequest] | None = None,
    ) -> None:
        super().__init__(requests)
        self.fingerprint = fingerprint
        self.expired: list[SolveRequest] = expired or []


class RequestQueue:
    """Thread-safe bounded FIFO with fingerprint coalescing."""

    def __init__(self, *, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._items: deque[SolveRequest] = deque()
        self._cond = threading.Condition()
        self._closed = False
        # Fingerprints a consumer is currently holding a dispatch
        # window open for; other consumers skip them when picking a
        # head so one worker gathers the whole burst instead of two
        # workers splitting it into fragmented passes.
        self._gathering: set[str] = set()

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    # ------------------------------------------------------------------
    def submit(self, request: SolveRequest) -> None:
        """Enqueue or raise :class:`QueueFullError` (admission control)."""
        with self._cond:
            if self._closed:
                raise QueueFullError("queue is closed")
            if len(self._items) >= self.maxsize:
                raise QueueFullError(
                    f"queue full ({self.maxsize} requests pending)"
                )
            self._items.append(request)
            self._cond.notify()

    def next_batch(
        self,
        *,
        max_batch: int = 8,
        timeout: float | None = None,
        rider=None,
        window=None,
        cap=None,
    ) -> DispatchBatch | None:
        """Dequeue the oldest live request plus same-pattern riders.

        Blocks until a request is available, the queue closes
        (returns ``None``) or ``timeout`` elapses (returns an empty
        batch).  The batch is ordered oldest-first and shares one
        fingerprint (exposed as ``batch.fingerprint``).  Requests whose
        deadline has already passed never occupy a lane: they are swept
        into ``batch.expired`` — both expired heads and expired riders
        of the head's fingerprint — for the worker to answer with
        ``TIMEOUT`` without displacing live work.

        ``rider``, when given, is the batching policy's bucketing
        hook: called as ``rider(head, candidate, size)`` for each live
        same-fingerprint candidate (``size`` = batch size so far,
        head included); a falsy return leaves the candidate queued, in
        order, to head its own later batch.  The head itself is never
        subject to the hook, so the oldest live request always
        dispatches first — bucketing can reorder riders, not starve
        heads.

        ``cap``, when given, is called as ``cap(head)`` once after the
        head is chosen and returns the batching policy's per-pattern
        batch-size limit; the effective limit is
        ``min(max_batch, cap(head))``.  Making the limit visible to
        the queue matters for the dispatch window: a rider hook that
        silently rejects at the policy's cap would leave the batch
        forever "unfilled" relative to ``max_batch``, so the gathering
        worker would stall out its entire window even though no rider
        can ever join.

        ``window``, when given, is called as ``window(head)`` and may
        return a dispatch window in seconds: how long this consumer
        holds the still-unfilled batch open, gathering same-pattern
        arrivals, before dispatching (the policy's latency-for-
        throughput trade on a pattern whose batches are known to pay).
        While the window is open the head's fingerprint is marked as
        *gathering*: concurrent consumers skip those requests when
        picking their own head — without the mark, two workers split
        one burst into fragmented passes — and are woken when the
        window closes.  A zero/None window dispatches immediately
        (the pre-window behaviour, and always the case for a batch
        already at the effective limit).
        """
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        wait_deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            expired: list[SolveRequest] = []
            head: SolveRequest | None = None
            while True:
                now = time.monotonic()
                while self._items and self._items[0].expired(now):
                    expired.append(self._items.popleft())
                for i, req in enumerate(self._items):
                    # Oldest request not claimed by another consumer's
                    # open dispatch window.
                    if req.fingerprint not in self._gathering:
                        head = req
                        del self._items[i]
                        break
                if head is not None:
                    break
                if expired:
                    # Nothing live, but the sweep found work to fail
                    # fast — report it rather than blocking.
                    return DispatchBatch(expired=expired)
                if self._closed:
                    return None
                remaining = None
                if wait_deadline is not None:
                    remaining = wait_deadline - time.monotonic()
                    if remaining <= 0:
                        return DispatchBatch()
                if not self._cond.wait(timeout=remaining) and (
                    wait_deadline is not None
                ):
                    return DispatchBatch()
            limit = max_batch
            if cap is not None:
                limit = max(1, min(max_batch, int(cap(head))))
            batch = DispatchBatch(
                [head], fingerprint=head.fingerprint, expired=expired
            )
            if head.streaming:
                # Session/sequence/scenario heads dispatch alone —
                # their pass shape is fixed by the request itself.
                return batch
            self._collect_riders(batch, head, limit, rider)
            hold = float(window(head) or 0.0) if window is not None else 0.0
            if hold > 0.0 and len(batch) < limit:
                self._gathering.add(head.fingerprint)
                try:
                    hold_deadline = time.monotonic() + hold
                    while len(batch) < limit and not self._closed:
                        remaining = hold_deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(timeout=remaining)
                        self._collect_riders(batch, head, limit, rider)
                finally:
                    self._gathering.discard(head.fingerprint)
                    self._cond.notify_all()
            return batch

    def _collect_riders(
        self, batch: DispatchBatch, head: SolveRequest, max_batch: int, rider
    ) -> None:
        """Pull the head's live same-fingerprint riders from the queue
        (caller holds the lock)."""
        if not self._items:
            return
        now = time.monotonic()
        keep: deque[SolveRequest] = deque()
        for req in self._items:
            if req.fingerprint != head.fingerprint:
                keep.append(req)
            elif req.expired(now):
                # Same-pattern and already dead: sweep it even when
                # the batch is full or the policy would reject it — it
                # can only ever be answered TIMEOUT, so fail it fast.
                batch.expired.append(req)
            elif req.streaming:
                # Never a rider: stays queued to head its own dispatch.
                keep.append(req)
            elif len(batch) < max_batch and (
                rider is None or rider(head, req, len(batch))
            ):
                batch.append(req)
            else:
                keep.append(req)
        self._items = keep

    def close(self) -> None:
        """Stop admissions and wake every blocked consumer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> list[SolveRequest]:
        """Remove and return everything still pending (shutdown path)."""
        with self._cond:
            pending = list(self._items)
            self._items.clear()
            return pending
