"""Adaptive batching controller: policy over the batching mechanism.

Offline, batched trace replay wins ~10x aggregate throughput; at the
serve tier a greedy "coalesce whatever is waiting" policy loses at p50
on most patterns, because lockstep ADMM runs every lane to the slowest
lane's convergence and per-instance iteration counts vary widely
(warm-start distance, rho adaptation).  The controller closes that
policy gap.  It never touches results: batching stays bit-identical
per lane, the controller only chooses *which* lanes share a batch and
when a batch gives up on lockstep.

Decisions, all learned online per pattern fingerprint from served
traffic (no offline profiles):

* **batch or not / how many** — :meth:`BatchController.max_batch_for`
  caps each pattern's batch size from an EWMA cost model: expected
  iterations, warm solo seconds, an affine pass-cost fit
  (``fixed + marginal * lanes``, from decayed regression over observed
  passes), the solo-fallback rate (lanes leaving lockstep for a rho
  refactorization) and the per-pass iteration spread.  A pattern whose
  lanes keep falling out of lockstep, or whose batched passes are
  slower per lane than solo solves, degenerates to solo dispatch —
  the honest outcome when batching cannot pay.
* **who rides together** — :meth:`BatchController.rider` is the
  :meth:`~repro.serve.queue.RequestQueue.next_batch` hook: a candidate
  joins the head's batch only when its values are close to the head's
  (relative L1 over ``q``/``l``/``u``).  Value distance is the serve
  tier's observable proxy for warm-start distance: instances close in
  data converge in similar iteration counts, so buckets stay
  iteration-homogeneous and lockstep wastes less work on stragglers.
* **bail out mid-flight** — :meth:`BatchController.make_progress`
  builds the ``progress`` callback for
  :meth:`~repro.backends.mib.MIBSolver.solve_batch`: once a pass runs
  past its iteration budget (learned expectation times a headroom
  factor, tightened by the slowest lane's deadline) and the live
  convergence spread says stragglers are holding the group, the
  stragglers are split back to solo lanes.  Splits reuse the lockstep
  loop's extraction mechanism, so bailed lanes stay bit-identical to
  solo solves.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

import numpy as np

from ..solver import QPProblem
from .metrics import ServeMetrics
from .queue import SolveRequest

__all__ = ["BatchController", "PatternStats", "POLICIES"]

POLICIES = ("adaptive", "greedy", "off")

# EWMA smoothing for every learned series: high enough to track a
# pattern's regime within a handful of passes, low enough not to
# thrash on one outlier.
DEFAULT_ALPHA = 0.35


def _ewma(old: float | None, new: float, alpha: float) -> float:
    if old is None:
        return new
    return (1.0 - alpha) * old + alpha * new


@dataclass
class PatternStats:
    """Per-fingerprint cost model, updated online from served traffic.

    ``None`` means "never observed" — decisions fall back to
    optimistic exploration until the first real observation lands.
    """

    # "Seconds" below are whatever the caller prices work in; the
    # server feeds worker-thread CPU seconds, which stay comparable
    # between the solo and batched paths when handler threads contend
    # for the interpreter during a pass (wall time would charge the
    # pass for its own early responses being serialized concurrently).
    ewma_iterations: float | None = None  # mean lane iterations
    ewma_spread: float | None = None  # (max-min)/max lane iterations
    ewma_solo_seconds: float | None = None  # warm solo solve cost
    ewma_lane_seconds: float | None = None  # pass cost / lanes
    ewma_pass_seconds: float | None = None  # batched pass cost
    ewma_pass_iterations: float | None = None  # slowest-lane iterations
    solo_fallback_rate: float | None = None  # lanes leaving lockstep via rho
    # Decayed first/second moments of (lanes, pass seconds) pairs, for
    # the affine pass-cost fit ``seconds ~= fixed + marginal * lanes``.
    # Per-lane averages (``ewma_lane_seconds``) conflate the two terms:
    # a fragmented 4-lane pass looks nearly as expensive per lane as a
    # solo solve even when the marginal lane is cheap, which would park
    # patterns solo on fragmentation noise.  The regression separates
    # them once pass sizes vary.
    m_lanes: float | None = None  # EWMA of lanes
    m_lanes_sq: float | None = None  # EWMA of lanes^2
    m_cross: float | None = None  # EWMA of lanes * seconds
    solo_solves: int = 0
    passes: int = 0
    lanes: int = 0
    bailed_lanes: int = 0
    # Exploration pressure: solo solves since the last batched pass.
    # A pattern parked at a solo cap stops producing passes, so its
    # cost model would never see fresher evidence without this.
    solo_since_pass: int = 0

    @property
    def seconds_per_iteration(self) -> float | None:
        """Observed wall seconds per lockstep iteration of one pass."""
        if not self.ewma_pass_seconds or not self.ewma_pass_iterations:
            return None
        return self.ewma_pass_seconds / self.ewma_pass_iterations

    @property
    def marginal_lane_seconds(self) -> float | None:
        """Slope of the affine pass-cost fit: cost of one *extra* lane.

        ``None`` until pass sizes have varied enough for the decayed
        regression to be well-conditioned (or when noise drives the
        slope non-positive); callers fall back to the per-lane average
        then.
        """
        if (
            self.m_lanes is None
            or self.m_lanes_sq is None
            or self.m_cross is None
            or self.ewma_pass_seconds is None
        ):
            return None
        var = self.m_lanes_sq - self.m_lanes * self.m_lanes
        if var <= 1e-6:
            return None
        slope = (
            self.m_cross - self.m_lanes * self.ewma_pass_seconds
        ) / var
        if slope <= 0.0:
            return None
        return slope

    @property
    def fixed_pass_seconds(self) -> float | None:
        """Intercept of the affine pass-cost fit (per-pass overhead:
        rebind, trace replay warm-up, harvest) — clamped at zero."""
        marginal = self.marginal_lane_seconds
        if marginal is None:
            return None
        return max(
            0.0, self.ewma_pass_seconds - marginal * self.m_lanes
        )

    def snapshot(self) -> dict:
        return {
            "ewma_iterations": self.ewma_iterations,
            "ewma_spread": self.ewma_spread,
            "ewma_solo_seconds": self.ewma_solo_seconds,
            "ewma_lane_seconds": self.ewma_lane_seconds,
            "ewma_pass_seconds": self.ewma_pass_seconds,
            "marginal_lane_seconds": self.marginal_lane_seconds,
            "fixed_pass_seconds": self.fixed_pass_seconds,
            "solo_fallback_rate": self.solo_fallback_rate,
            "solo_solves": self.solo_solves,
            "passes": self.passes,
            "lanes": self.lanes,
            "bailed_lanes": self.bailed_lanes,
            "solo_since_pass": self.solo_since_pass,
        }


def value_distance(head: QPProblem, candidate: QPProblem) -> float:
    """Relative L1 distance between two same-pattern instances.

    Sums the relative change of ``q``, ``l`` and ``u`` — the vectors
    parametric serve traffic actually moves.  Infinite bounds compare
    structurally: matching infinities contribute zero, a finite bound
    against an infinite one makes the instances maximally far apart
    (their active sets cannot be assumed close).
    """
    total = 0.0
    for a, b in ((head.q, candidate.q), (head.l, candidate.l), (head.u, candidate.u)):
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        finite = np.isfinite(a) & np.isfinite(b)
        if not np.array_equal(np.isfinite(a), np.isfinite(b)):
            return math.inf
        diff = float(np.abs(a[finite] - b[finite]).sum())
        scale = 1.0 + float(np.abs(a[finite]).sum())
        total += diff / scale
    return total


class BatchController:
    """Per-pattern adaptive batching policy (see module docstring).

    Parameters
    ----------
    policy:
        ``"adaptive"`` (learned caps, bucketing, bail-out),
        ``"greedy"`` (coalesce up to the server's max batch — the
        pre-controller behaviour) or ``"off"`` (never coalesce).
        Mutable at runtime; the policy-comparison benchmark flips it
        between phases.
    latency_budget:
        How many solo-solve durations a batched pass is allowed to
        cost before the cap shrinks.  The learned cap is roughly
        ``(latency_budget * solo_seconds - fixed) / marginal`` — "batch
        no more lanes than the latency budget buys at the fitted
        pass-cost rate".  The budget bounds the *pass*, which is an
        upper bound on any lane's latency: early publication harvests
        each lane at its own convergence, so the typical lane pays
        well under the budget.
    bucket_width:
        Maximum :func:`value_distance` between a batch head and a
        rider under the adaptive policy.
    fallback_threshold:
        Solo-fallback rate above which a pattern stops batching
        entirely (its lanes keep leaving lockstep for rho
        refactorizations, so lockstep only adds overhead).
    bailout_headroom:
        Iteration budget of a pass, as a multiple of the learned
        expected iterations; past it the progress callback starts
        splitting stragglers.
    spread_threshold:
        How many times worse than the group's best lane a lane's
        convergence ratio must be (log-scaled residual ratio) to count
        as a straggler at bail-out time.
    explore_interval:
        Solo solves of a pattern tolerated without a single batched
        pass before the cap decision forces an exploration pass at
        the hard cap.  A pattern parked solo never produces the pass
        observations that could revise its verdict; this bounds how
        stale that verdict may grow.
    default_window / max_window:
        Dispatch-window bounds (seconds) for
        :meth:`dispatch_window`: ``default_window`` applies while the
        pattern's solo cost is still unobserved, ``max_window`` caps
        the hold absolutely.
    """

    def __init__(
        self,
        *,
        policy: str = "adaptive",
        alpha: float = DEFAULT_ALPHA,
        latency_budget: float = 6.0,
        bucket_width: float = 0.35,
        fallback_threshold: float = 0.4,
        bailout_headroom: float = 3.0,
        spread_threshold: float = 10.0,
        min_explore_passes: int = 2,
        explore_interval: int = 16,
        default_window: float = 0.01,
        max_window: float = 0.05,
        metrics: ServeMetrics | None = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.policy = policy
        self.alpha = alpha
        self.latency_budget = latency_budget
        self.bucket_width = bucket_width
        self.fallback_threshold = fallback_threshold
        self.bailout_headroom = bailout_headroom
        self.spread_threshold = spread_threshold
        self.min_explore_passes = min_explore_passes
        self.explore_interval = explore_interval
        self.default_window = default_window
        self.max_window = max_window
        self.metrics = metrics
        self._lock = threading.Lock()
        self._stats: dict[str, PatternStats] = {}

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def stats_for(self, fingerprint: str) -> PatternStats:
        with self._lock:
            return self._stats.setdefault(fingerprint, PatternStats())

    def observe_solo(
        self, fingerprint: str, *, seconds: float, iterations: int
    ) -> None:
        """Account one warm solo solve of this pattern."""
        with self._lock:
            s = self._stats.setdefault(fingerprint, PatternStats())
            s.ewma_solo_seconds = _ewma(
                s.ewma_solo_seconds, float(seconds), self.alpha
            )
            s.ewma_iterations = _ewma(
                s.ewma_iterations, float(iterations), self.alpha
            )
            s.solo_solves += 1
            s.solo_since_pass += 1

    def observe_pass(
        self,
        fingerprint: str,
        *,
        lanes: int,
        seconds: float,
        lane_iterations: list[int],
        solo_lanes: int,
        bailed_lanes: int = 0,
    ) -> None:
        """Account one batched pass: timing, spread, fallback rate.

        ``solo_lanes`` counts lanes that left lockstep for a rho
        refactorization (the mechanism's correctness fallback);
        bail-out splits are tracked separately and do *not* raise the
        fallback rate — they are the controller's own doing.
        """
        if lanes < 1:
            return
        iters = [int(i) for i in lane_iterations]
        top = max(iters)
        spread = (top - min(iters)) / top if top else 0.0
        rho_solo = max(0, int(solo_lanes) - int(bailed_lanes))
        with self._lock:
            s = self._stats.setdefault(fingerprint, PatternStats())
            s.ewma_pass_seconds = _ewma(
                s.ewma_pass_seconds, float(seconds), self.alpha
            )
            s.ewma_lane_seconds = _ewma(
                s.ewma_lane_seconds, float(seconds) / lanes, self.alpha
            )
            s.ewma_pass_iterations = _ewma(
                s.ewma_pass_iterations, float(top), self.alpha
            )
            s.ewma_iterations = _ewma(
                s.ewma_iterations, float(np.mean(iters)), self.alpha
            )
            s.ewma_spread = _ewma(s.ewma_spread, spread, self.alpha)
            s.m_lanes = _ewma(s.m_lanes, float(lanes), self.alpha)
            s.m_lanes_sq = _ewma(
                s.m_lanes_sq, float(lanes) ** 2, self.alpha
            )
            s.m_cross = _ewma(
                s.m_cross, float(lanes) * float(seconds), self.alpha
            )
            s.solo_fallback_rate = _ewma(
                s.solo_fallback_rate, rho_solo / lanes, self.alpha
            )
            s.passes += 1
            s.lanes += lanes
            s.bailed_lanes += int(bailed_lanes)
            s.solo_since_pass = 0

    # ------------------------------------------------------------------
    # dispatch decisions
    # ------------------------------------------------------------------
    def max_batch_for(self, fingerprint: str, hard_cap: int) -> int:
        """The pattern's batch-size cap under the current policy.

        Adaptive reasoning, in decision order:

        1. no pass history yet → explore at the hard cap (the first
           pass is the only way to learn whether batching pays);
        2. the pattern has gone ``explore_interval`` solo solves
           without a pass → explore again: a solo verdict must be
           re-earned, not held forever on stale evidence;
        3. rho-heavy pattern (fallback rate past the threshold) →
           solo: its lanes keep leaving lockstep anyway;
        4. batched lanes not cheaper than solo solves → solo: batching
           loses throughput *and* latency.  "Lane cost" is the affine
           fit's *marginal* lane cost when available
           (:attr:`PatternStats.marginal_lane_seconds`), else the
           per-lane average — the average conflates the fixed per-pass
           cost with the marginal lane, so fragmented small passes
           would otherwise park a pattern solo on amortization noise;
        5. otherwise cap at what the latency budget buys.  The budget
           reads as "the head may pay up to ``latency_budget`` times
           its solo latency for the pass": a pass of ``cap`` lanes
           costs ``fixed + cap * marginal`` seconds, so
           ``cap = (latency_budget * solo - fixed) / marginal`` (or
           ``latency_budget * solo / lane`` under the average-cost
           fallback).  Iteration spread deliberately does *not* shrink
           the cap: lanes publish at their own harvest boundary (early
           publication), so a fast lane in a heterogeneous pass pays
           its own convergence time, not the slowest lane's — spread
           is handled mid-flight by the bail-out split instead
           (:meth:`make_progress`).
        """
        if hard_cap < 1:
            return 1
        if self.policy == "off":
            return 1
        if self.policy == "greedy":
            return hard_cap
        s = self.stats_for(fingerprint)
        with self._lock:
            if s.passes < self.min_explore_passes:
                return hard_cap
            if s.solo_since_pass >= self.explore_interval:
                return hard_cap
            if (
                s.solo_fallback_rate is not None
                and s.solo_fallback_rate > self.fallback_threshold
            ):
                return 1
            solo = s.ewma_solo_seconds
            lane = s.ewma_lane_seconds
            if solo is None or lane is None or lane <= 0.0:
                return hard_cap
            marginal = s.marginal_lane_seconds
            if marginal is not None:
                if marginal >= solo:
                    return 1
                fixed = s.fixed_pass_seconds or 0.0
                cap = (self.latency_budget * solo - fixed) / marginal
            else:
                if lane >= solo:
                    return 1
                cap = self.latency_budget * solo / lane
            return int(max(1, min(hard_cap, math.floor(cap))))

    def dispatch_window(self, head: SolveRequest) -> float:
        """How long the dequeuing worker may hold ``head``'s batch
        open to gather same-pattern arrivals, in seconds.

        Concurrent bursts trickle into the queue request by request
        (admission is its own bottleneck), so dispatching the instant
        a head appears fragments a burst into small passes that pay
        the fixed pass cost many times.  When the learned model says
        batching pays (cap above 1), waiting roughly one solo-solve
        duration buys a much larger pass; the window is capped
        absolutely and by a fraction of the head's remaining deadline.
        Greedy/off policies never hold (the pre-controller
        behaviour).
        """
        if self.policy != "adaptive":
            return 0.0
        if self.max_batch_for(head.fingerprint, 1 << 30) <= 1:
            return 0.0
        s = self.stats_for(head.fingerprint)
        with self._lock:
            solo = s.ewma_solo_seconds
        window = (
            2.0 * solo if solo is not None else self.default_window
        )
        window = min(window, self.max_window)
        remaining = head.remaining()
        if remaining is not None:
            window = min(window, 0.25 * remaining)
        return max(window, 0.0)

    def rider(
        self, head: SolveRequest, candidate: SolveRequest, size: int
    ) -> bool:
        """Queue hook: may ``candidate`` join ``head``'s batch?

        Called by :meth:`~repro.serve.queue.RequestQueue.next_batch`
        for same-fingerprint candidates only; ``size`` is the batch
        size so far (head included).
        """
        if self.policy == "off":
            return False
        if self.policy == "greedy":
            return True
        cap = self.max_batch_for(head.fingerprint, hard_cap=1 << 30)
        if size >= cap:
            if self.metrics is not None:
                self.metrics.inc("rider_rejects_cap")
            return False
        if (
            value_distance(head.problem, candidate.problem)
            > self.bucket_width
        ):
            if self.metrics is not None:
                self.metrics.inc("rider_rejects_distance")
            return False
        return True

    # ------------------------------------------------------------------
    # mid-flight bail-out
    # ------------------------------------------------------------------
    def make_progress(
        self,
        fingerprint: str,
        *,
        deadline_remaining: float | None = None,
    ):
        """The ``progress`` callback for one batched pass, or ``None``.

        The returned closure splits stragglers out of lockstep once
        the pass runs past its iteration budget: the learned expected
        iteration count times ``bailout_headroom``, tightened to what
        the slowest lane's remaining deadline can still afford at the
        observed per-iteration rate.  A lane counts as a straggler
        when its convergence ratio is ``spread_threshold`` times the
        group's best on a log scale — the "live convergence spread"
        signal.  Greedy/off policies run without a callback.
        """
        if self.policy != "adaptive":
            return None
        s = self.stats_for(fingerprint)
        with self._lock:
            expected = s.ewma_iterations
            sec_per_iter = s.seconds_per_iteration
        if expected is None:
            return None  # nothing learned yet; let the pass run
        budget = self.bailout_headroom * expected
        if deadline_remaining is not None and sec_per_iter:
            budget = min(budget, deadline_remaining / sec_per_iter)
        budget = max(budget, 1.0)
        metrics = self.metrics
        threshold = self.spread_threshold

        def progress(p) -> list[int]:
            if p.iteration <= budget:
                return []
            conv = np.maximum(p.primal_ratio, p.dual_ratio)
            best = float(conv.min())
            stragglers = conv > threshold * max(best, 1e-12)
            if not stragglers.any() or stragglers.all():
                # No spread to exploit: either the group converges
                # together (keep lockstep) or *everyone* is a
                # straggler (splitting buys nothing but overhead).
                return []
            ids = [int(i) for i in p.ids[stragglers]]
            if metrics is not None:
                metrics.inc("bailout_lanes", len(ids))
            return ids

        return progress

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready view of every pattern's learned model."""
        with self._lock:
            return {
                "policy": self.policy,
                "patterns": {
                    fp: s.snapshot() for fp, s in self._stats.items()
                },
            }
