"""Shard worker process: one private solve engine behind a pipe.

Each worker owns a full serve execution stack — warm
:class:`~repro.serve.pool.SolverPool`, bounded queue, adaptive
:class:`~repro.serve.controller.BatchController`, fused/replay
execution, optionally an on-disk schedule cache shared read-mostly
with its siblings — wrapped in a
:class:`~repro.serve.engine.SolveEngine`.  Nothing here knows about
HTTP: the worker speaks the shard protocol over one duplex pipe.

Protocol (parent → worker):

* ``("register", fingerprint, problem_doc)`` — cache the pattern's
  skeleton (``repro-qp-v1`` document).  Sent once per pattern per
  worker incarnation; pipe ordering guarantees it precedes the
  pattern's first solve.
* ``("solve", req_id, fingerprint, deadline, slab_index, nbytes,
  inline, session)`` — solve one instance; values come from the
  shared-memory slab (``inline=None``) or inline bytes (ring
  saturated / oversized payload).  ``deadline`` is an absolute
  ``time.monotonic()`` value — comparable across processes on the
  platforms this serves (Linux CLOCK_MONOTONIC is system-wide).
  ``session`` pins the solve to the worker's session store (sticky
  warm start); session state lives and dies with the incarnation.
* ``("sequence", req_id, fingerprint, deadline, session, payloads)`` /
  ``("scenarios", req_id, fingerprint, deadline, payloads)`` — an
  ordered step list on one session / a scenario fan-out; ``payloads``
  are packed value blobs (one per step), inline on the pipe — the
  response is singular so no slab cadence applies.
* ``("metrics", query_id)`` / ``("health", query_id)`` — observability
  snapshots.
* ``("stop",)`` — drain and exit.

Worker → parent:

* ``("ready", shard_id, pid)`` — engine is up (sent once per
  incarnation; the front-end routes to this shard only after it).
* ``("done", req_id, slab_index, status_code, payload)`` — the
  response, forwarded the moment the engine publishes it (early
  batched lanes included); the front-end frees the slab on receipt.
* ``("metrics", query_id, snapshot)`` / ``("health", query_id, doc)``.

The worker never frees slabs and copies values out during decode, so
a crashed worker leaves the ring reclaimable by the front-end alone.
"""

from __future__ import annotations

import os
import signal
import threading
import time

from ..io import problem_from_dict
from ..serve.engine import SolveEngine
from ..serve.queue import QueueFullError, SolveRequest
from ..solver import QPProblem
from .transport import SlabRing, rebuild_problem, unpack_values

__all__ = ["ShardWorker", "shard_worker_main"]


class ShardWorker:
    """The in-process half of one shard (testable without fork/spawn)."""

    def __init__(
        self,
        shard_id: int,
        conn,
        ring: SlabRing | None,
        config: dict,
    ) -> None:
        self.shard_id = shard_id
        self.conn = conn
        self.ring = ring
        self.engine = SolveEngine(
            workers=max(1, int(config.get("workers", 1))),
            queue_size=int(config.get("queue_size", 64)),
            max_batch=int(config.get("max_batch", 16)),
            batch_policy=str(config.get("batch_policy", "greedy")),
            **config.get("pool_kwargs", {}),
        )
        self._skeletons: dict[str, QPProblem] = {}
        self._send_lock = threading.Lock()
        self.started_at = time.monotonic()
        self.solved = 0

    # ------------------------------------------------------------------
    def _send(self, message: tuple) -> None:
        # Connection.send is not thread-safe; engine worker threads and
        # the control loop share the pipe.
        with self._send_lock:
            self.conn.send(message)

    # ------------------------------------------------------------------
    def run(self) -> None:
        self.engine.start()
        self._send(("ready", self.shard_id, os.getpid()))
        try:
            while True:
                try:
                    message = self.conn.recv()
                except (EOFError, OSError):
                    # Front-end went away: nothing to answer to.
                    break
                if not self.handle(message):
                    break
        finally:
            self.engine.stop()

    def handle(self, message: tuple) -> bool:
        """Process one control message; ``False`` ends the loop."""
        kind = message[0]
        if kind == "stop":
            return False
        if kind == "register":
            _, fingerprint, doc = message
            self._skeletons[fingerprint] = problem_from_dict(doc)
            return True
        if kind == "solve":
            self._handle_solve(*message[1:])
            return True
        if kind == "sequence":
            self._handle_stream(*message[1:], scenarios=False)
            return True
        if kind == "scenarios":
            req_id, fingerprint, deadline, payloads = message[1:]
            self._handle_stream(
                req_id, fingerprint, deadline, None, payloads,
                scenarios=True,
            )
            return True
        if kind == "metrics":
            query_id = message[1]
            snap = self.engine.metrics.snapshot()
            snap["controller"] = self.engine.controller.snapshot()
            snap["pool_entries"] = self.engine.pool.entries_info()
            snap["sessions"] = self.engine.pool.sessions.snapshot()
            self._send(("metrics", query_id, snap))
            return True
        if kind == "health":
            query_id = message[1]
            self._send(("health", query_id, self.health()))
            return True
        # Unknown message kinds are protocol bugs; fail loudly enough
        # for the demux thread's logs without killing the worker.
        self._send(("error", f"unknown message kind {kind!r}"))
        return True

    def health(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "pid": os.getpid(),
            "uptime_s": time.monotonic() - self.started_at,
            "patterns_resident": len(self.engine.pool),
            "patterns_registered": len(self._skeletons),
            "fingerprints": self.engine.pool.fingerprints(),
            "queue_depth": len(self.engine.queue),
            "solved": self.solved,
            "sessions": len(self.engine.pool.sessions),
        }

    # ------------------------------------------------------------------
    def _handle_solve(
        self,
        req_id: int,
        fingerprint: str,
        deadline: float | None,
        slab_index: int | None,
        nbytes: int,
        inline: bytes | None,
        session: str | None = None,
    ) -> None:
        def finish(status_code: int, payload: dict) -> None:
            self._send(("done", req_id, slab_index, status_code, payload))

        try:
            skeleton = self._skeletons.get(fingerprint)
            if skeleton is None:
                finish(
                    500,
                    {
                        "status": "error",
                        "detail": "pattern was never registered with "
                        "this shard incarnation",
                    },
                )
                return
            if inline is not None:
                payload = inline
            else:
                payload = self.ring.read(slab_index, nbytes)
            problem = rebuild_problem(skeleton, unpack_values(payload))
        except Exception as exc:
            finish(
                400,
                {"status": "error", "detail": f"{type(exc).__name__}: {exc}"},
            )
            return

        def forward(request: SolveRequest) -> None:
            self.solved += request.status_code == 200
            finish(request.status_code, request.response)

        request = SolveRequest(
            problem=problem,
            fingerprint=fingerprint,
            deadline=deadline,
            on_done=forward,
            session_key=session,
        )
        try:
            self.engine.submit(request)
        except QueueFullError as exc:
            # on_done fires through respond(), keeping the response
            # path single.
            request.respond(503, {"status": "rejected", "detail": str(exc)})

    def _handle_stream(
        self,
        req_id: int,
        fingerprint: str,
        deadline: float | None,
        session: str | None,
        payloads: list,
        *,
        scenarios: bool,
    ) -> None:
        """Rebuild a multi-instance request and hand it to the engine."""

        def finish(status_code: int, payload: dict) -> None:
            self._send(("done", req_id, None, status_code, payload))

        try:
            skeleton = self._skeletons.get(fingerprint)
            if skeleton is None:
                finish(
                    500,
                    {
                        "status": "error",
                        "detail": "pattern was never registered with "
                        "this shard incarnation",
                    },
                )
                return
            problems = [
                rebuild_problem(skeleton, unpack_values(blob))
                for blob in payloads
            ]
            if not problems:
                raise ValueError("empty step list")
        except Exception as exc:
            finish(
                400,
                {"status": "error", "detail": f"{type(exc).__name__}: {exc}"},
            )
            return

        def forward(request: SolveRequest) -> None:
            self.solved += request.status_code == 200
            finish(request.status_code, request.response)

        request = SolveRequest(
            problem=problems[0],
            fingerprint=fingerprint,
            deadline=deadline,
            on_done=forward,
            session_key=session,
            steps=None if scenarios else problems,
            scenarios=problems if scenarios else None,
        )
        try:
            self.engine.submit(request)
        except QueueFullError as exc:
            request.respond(503, {"status": "rejected", "detail": str(exc)})


def shard_worker_main(
    shard_id: int,
    conn,
    shm_name: str | None,
    slabs: int,
    slab_size: int,
    config: dict,
) -> None:
    """Process entry point (spawn-safe: module-level, picklable args)."""
    # A terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group, workers included.  Shutdown is parent-driven (a "stop"
    # message, pipe EOF, or SIGKILL), so ignore the signal here rather
    # than dying mid-protocol with a KeyboardInterrupt traceback.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    ring = None
    if shm_name is not None:
        ring = SlabRing.attach(shm_name, slabs=slabs, slab_size=slab_size)
    try:
        ShardWorker(shard_id, conn, ring, config).run()
    finally:
        if ring is not None:
            ring.close()
