"""Shared-memory transport: the value-slab ring and its codec.

The sharded serve tier's data plane.  Patterns are cached shard-side
(the worker keeps one *skeleton* problem per fingerprint), so the only
thing that moves per request is the numeric payload — ``q``, ``l``,
``u`` and the non-zero values of ``P`` (upper triangle, wire
convention) and ``A``.  Those are packed as raw little-endian float64
into a slab of a ``multiprocessing.shared_memory`` ring, and the
control message crossing the pipe carries just the slab index — a few
dozen bytes per request instead of a pickled problem.

Raw float64 is also the correctness seam: every value round-trips
**bit-exactly** (±inf included — no JSON encoding on the hot path), so
a sharded solve is bit-identical to an in-process solve of the same
request.

Ownership discipline: only the front-end allocates and frees slabs
(single-owner free list, no cross-process atomics).  The worker copies
the payload out during decode and never writes the ring; a slab is
freed when its response arrives — or when the front-end fails the
request after a worker death, which is what makes ring recovery after
a respawn trivial (every in-flight slab is released by the same code
path that answers the request 503).
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..linalg import CSCMatrix
from ..solver import QPProblem

__all__ = [
    "SlabOverflow",
    "SlabRing",
    "ShardValues",
    "pack_values",
    "unpack_values",
    "rebuild_problem",
]

_MAGIC = b"MIBS"
_VERSION = 1
# magic, version, n, m, p_nnz, a_nnz
_HEADER = struct.Struct("<4sIQQQQ")


class SlabOverflow(ValueError):
    """A payload does not fit one slab (caller falls back to inline)."""


@dataclass(frozen=True)
class ShardValues:
    """One request's numeric payload, decoded (arrays own their data)."""

    q: np.ndarray
    l: np.ndarray
    u: np.ndarray
    p_data: np.ndarray  # upper-triangle non-zeros of P (wire convention)
    a_data: np.ndarray

    @property
    def nbytes(self) -> int:
        return _HEADER.size + 8 * (
            self.q.size + self.l.size + self.u.size
            + self.p_data.size + self.a_data.size
        )


def packed_size(problem: QPProblem) -> int:
    """Bytes :func:`pack_values` will produce for ``problem``."""
    return _HEADER.size + 8 * (
        problem.n + 2 * problem.m + problem.p_upper.nnz + problem.a.nnz
    )


def pack_values(problem: QPProblem) -> bytes:
    """Encode a problem's numeric values (pattern stays shard-side).

    ``P`` values are the **upper triangle** non-zeros in canonical CSC
    order — the same convention as the ``repro-qp-v1`` wire document,
    so the payload matches the skeleton a worker rebuilt from the
    registration document regardless of whether the sender stored
    ``P`` full or upper-triangular.
    """
    header = _HEADER.pack(
        _MAGIC,
        _VERSION,
        problem.n,
        problem.m,
        problem.p_upper.nnz,
        problem.a.nnz,
    )
    parts = [
        header,
        np.ascontiguousarray(problem.q, dtype="<f8").tobytes(),
        np.ascontiguousarray(problem.l, dtype="<f8").tobytes(),
        np.ascontiguousarray(problem.u, dtype="<f8").tobytes(),
        np.ascontiguousarray(problem.p_upper.data, dtype="<f8").tobytes(),
        np.ascontiguousarray(problem.a.data, dtype="<f8").tobytes(),
    ]
    return b"".join(parts)


def unpack_values(buf: bytes | memoryview) -> ShardValues:
    """Decode a packed payload into owned arrays.

    The returned arrays are **copies**: decoding directly out of a
    shared-memory slab must not alias storage the front-end will
    recycle for the next request.
    """
    view = memoryview(buf)
    if len(view) < _HEADER.size:
        raise ValueError("payload shorter than the value header")
    magic, version, n, m, p_nnz, a_nnz = _HEADER.unpack_from(view, 0)
    if magic != _MAGIC:
        raise ValueError(f"bad value-payload magic {magic!r}")
    if version != _VERSION:
        raise ValueError(f"unsupported value-payload version {version}")
    need = _HEADER.size + 8 * (n + 2 * m + p_nnz + a_nnz)
    if len(view) < need:
        raise ValueError(
            f"truncated value payload: need {need} bytes, have {len(view)}"
        )
    offset = _HEADER.size

    def take(count: int) -> np.ndarray:
        nonlocal offset
        arr = np.frombuffer(view, dtype="<f8", count=count, offset=offset)
        offset += 8 * count
        # .copy() detaches from the slab (see docstring) and yields a
        # native-endian owned array.
        return arr.astype(np.float64, copy=True)

    return ShardValues(
        q=take(n), l=take(m), u=take(m), p_data=take(p_nnz), a_data=take(a_nnz)
    )


def rebuild_problem(skeleton: QPProblem, values: ShardValues) -> QPProblem:
    """A fresh numeric instance of ``skeleton``'s pattern.

    The skeleton is the problem the front-end registered for this
    fingerprint (wire form: ``P`` stored upper-triangular), so its CSC
    index structure is exactly the order the packed values follow.
    Index arrays are shared with the skeleton — they are pattern
    constants — and only the value arrays are new.
    """
    if values.q.size != skeleton.n or values.l.size != skeleton.m:
        raise ValueError(
            f"value payload sized for n={values.q.size}/m={values.l.size}, "
            f"skeleton has n={skeleton.n}/m={skeleton.m}"
        )
    p_upper = skeleton.p_upper
    if values.p_data.size != p_upper.nnz or values.a_data.size != skeleton.a.nnz:
        raise ValueError("value payload nnz does not match the skeleton")
    p = CSCMatrix(
        p_upper.shape, p_upper.indptr, p_upper.indices, values.p_data,
        check=False,
    )
    a = CSCMatrix(
        skeleton.a.shape, skeleton.a.indptr, skeleton.a.indices,
        values.a_data, check=False,
    )
    return QPProblem(
        p=p, q=values.q, a=a, l=values.l, u=values.u, name=skeleton.name
    )


class SlabRing:
    """A ring of fixed-size value slabs in one shared-memory segment.

    One ring per shard.  The front-end side (``create=True``) owns
    allocation: :meth:`acquire` hands out a free slab index or ``None``
    when the ring is saturated (the caller falls back to sending the
    payload inline over the pipe — backpressure without deadlock), and
    :meth:`release` returns it.  The worker side attaches by name and
    only ever reads.
    """

    def __init__(
        self, *, slabs: int = 32, slab_size: int = 1 << 20,
        name: str | None = None,
    ) -> None:
        if slabs < 1 or slab_size < _HEADER.size:
            raise ValueError("need at least one slab of non-trivial size")
        self.slabs = slabs
        self.slab_size = slab_size
        self._owner = name is None
        if self._owner:
            self.shm = shared_memory.SharedMemory(
                create=True, size=slabs * slab_size
            )
        else:
            # Attaching re-registers the segment with the resource
            # tracker, but shard workers inherit the front-end's
            # tracker process, whose cache is a set — the re-register
            # is idempotent and the front-end's unlink() remains the
            # single cleanup.  (Do NOT "fix" this with
            # resource_tracker.unregister here: with a shared tracker
            # that would erase the owner's registration instead.)
            self.shm = shared_memory.SharedMemory(name=name)
        self.name = self.shm.name
        self._free = list(range(slabs - 1, -1, -1))
        self._lock = threading.Lock()

    @classmethod
    def attach(cls, name: str, *, slabs: int, slab_size: int) -> "SlabRing":
        return cls(slabs=slabs, slab_size=slab_size, name=name)

    # ------------------------------------------------------------------
    def acquire(self) -> int | None:
        with self._lock:
            return self._free.pop() if self._free else None

    def release(self, index: int) -> None:
        with self._lock:
            if index in self._free:  # double release is a logic error
                raise ValueError(f"slab {index} already free")
            self._free.append(index)

    def free_count(self) -> int:
        with self._lock:
            return len(self._free)

    def write(self, index: int, payload: bytes) -> int:
        """Copy ``payload`` into slab ``index``; returns its length."""
        if len(payload) > self.slab_size:
            raise SlabOverflow(
                f"payload of {len(payload)} bytes exceeds the "
                f"{self.slab_size}-byte slab"
            )
        start = index * self.slab_size
        self.shm.buf[start : start + len(payload)] = payload
        return len(payload)

    def read(self, index: int, nbytes: int) -> bytes:
        """Copy slab ``index``'s first ``nbytes`` bytes out of the ring."""
        if nbytes > self.slab_size:
            raise ValueError("read beyond the slab boundary")
        start = index * self.slab_size
        return bytes(self.shm.buf[start : start + nbytes])

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.shm.close()

    def unlink(self) -> None:
        if self._owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
