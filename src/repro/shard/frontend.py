"""Shard front-end: admission, routing, deadline propagation, demux.

The thin process-local layer between the HTTP handlers (or any other
request source) and the shard worker fleet:

* **admission** — one global in-flight bound (``queue_size``); beyond
  it :class:`~repro.serve.queue.QueueFullError` surfaces as the same
  structured 503 the in-process queue produces.
* **routing** — the request's pattern fingerprint is routed on the
  consistent-hash ring to its home shard, so every pattern compiles
  and stays warm in exactly one worker.  While a shard respawns, its
  patterns re-route to their ring successors; everyone else is
  untouched.
* **transport** — values are packed into the shard's shared-memory
  slab ring (:func:`~repro.shard.transport.pack_values`); the pipe
  carries only the control message.  A saturated ring or an oversized
  problem falls back to inline bytes on the pipe — slower, never
  stuck.
* **deadline propagation** — the request's absolute monotonic deadline
  crosses the pipe; the worker's engine enforces it exactly as the
  in-process engine would, and the HTTP handler's wait backstops it.
* **demux** — one thread per shard turns ``("done", ...)`` messages
  back into :meth:`~repro.serve.queue.SolveRequest.respond` calls and
  recycles slabs.  The same thread observes worker death (pipe EOF),
  fails that shard's in-flight requests fast as 503, and respawns the
  worker — in-order pipe semantics make "every response before the
  EOF" a protocol guarantee, not a race.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from ..io import problem_to_dict
from ..serve.metrics import ServeMetrics
from ..serve.pool import SolverPool
from ..serve.queue import QueueFullError, SolveRequest
from .manager import ShardManager
from .router import ConsistentHashRouter
from .transport import pack_values

__all__ = ["ShardFrontend"]

_QUERY_IDS = itertools.count(1)


@dataclass
class _InFlight:
    request: SolveRequest
    shard_id: int
    generation: int
    slab_index: int | None


@dataclass
class _Query:
    shard_id: int
    event: threading.Event = field(default_factory=threading.Event)
    payload: dict | None = None


class ShardFrontend:
    """Route solve requests across N shard worker processes."""

    def __init__(
        self,
        *,
        shards: int,
        workers: int = 2,
        queue_size: int = 64,
        max_batch: int = 16,
        batch_policy: str = "greedy",
        slabs: int = 32,
        slab_size: int = 1 << 20,
        ready_timeout_s: float = 120.0,
        metrics: ServeMetrics | None = None,
        **pool_kwargs,
    ) -> None:
        self.metrics = metrics if metrics is not None else ServeMetrics()
        # Fingerprint-only pool: routes and coalesces exactly like the
        # workers' pools (same configuration → same cache keys) but
        # never builds a solver, so it stays cold and cheap.
        self.pool = SolverPool(metrics=self.metrics, **pool_kwargs)
        self.queue_size = queue_size
        self.max_batch = max_batch
        self.batch_policy = batch_policy
        self.ready_timeout_s = ready_timeout_s
        self.manager = ShardManager(
            shards=shards,
            worker_config={
                "workers": workers,
                "queue_size": queue_size,
                "max_batch": max_batch,
                "batch_policy": batch_policy,
                "pool_kwargs": dict(pool_kwargs),
            },
            slabs=slabs,
            slab_size=slab_size,
        )
        self.router = ConsistentHashRouter(self.manager.shard_ids)
        self._inflight: dict[int, _InFlight] = {}
        self._inflight_lock = threading.Lock()
        self._queries: dict[int, _Query] = {}
        self._query_lock = threading.Lock()
        self._ready_cond = threading.Condition()
        self._closed = False
        self._threads: list[threading.Thread] = []
        # Consecutive deaths without an intervening ("ready", ...) —
        # drives exponential respawn backoff so a worker that can never
        # come up (bad config, import failure) degrades the shard
        # instead of melting the host with a spawn storm.
        self._death_streak: dict[int, int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardFrontend":
        self.manager.spawn_all()
        for sid in self.manager.shard_ids:
            thread = threading.Thread(
                target=self._demux_loop,
                args=(sid,),
                name=f"shard-demux-{sid}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        deadline = time.monotonic() + self.ready_timeout_s
        with self._ready_cond:
            while not all(
                h.alive for h in self.manager.handles.values()
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    missing = [
                        sid
                        for sid, h in self.manager.handles.items()
                        if not h.alive
                    ]
                    self.stop()
                    raise RuntimeError(
                        f"shard workers {missing} never became ready"
                    )
                self._ready_cond.wait(timeout=remaining)
        return self

    def stop(self) -> None:
        self._closed = True
        with self._inflight_lock:
            victims = list(self._inflight.values())
            self._inflight.clear()
        for entry in victims:
            self._release_slab(entry)
            entry.request.respond(
                503,
                {"status": "rejected", "detail": "server shutting down"},
            )
        # Fold each live shard's counters into the front-end registry
        # before tearing the fleet down, so the post-shutdown report
        # shows fleet totals (compiles, warm solves, lanes) rather than
        # the front-end's admission-side series alone.  Counter names
        # are disjoint per side (requests_total is HTTP-side only,
        # responses_ok engine-side only), so this never double-counts,
        # and with every shard gone afterwards metrics_snapshot()
        # degenerates to exactly this folded view.
        for sid in sorted(self.live_shards()):
            snap = self._ask(sid, "metrics", timeout_s=2.0)
            if snap is None:
                continue
            for name, value in snap["counters"].items():
                if value:
                    self.metrics.inc(name, value)
            for size, count in snap.get("batch_sizes", {}).items():
                self.metrics.observe_batch(int(size), count)
        with self._query_lock:
            for query in self._queries.values():
                query.event.set()
            self._queries.clear()
        self.manager.stop()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()

    def live_shards(self) -> set[int]:
        return {
            sid for sid, h in self.manager.handles.items() if h.alive
        }

    def kill_shard(self, shard_id: int) -> None:
        """Failure injection (tests / the recovery smoke): SIGKILL."""
        self.manager.kill(shard_id)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(self, request: SolveRequest) -> None:
        """Admit, route and ship one request (raises ``QueueFullError``
        on backpressure or when no live shard exists)."""
        if self._closed:
            raise QueueFullError("queue is closed")
        with self._inflight_lock:
            if len(self._inflight) >= self.queue_size:
                raise QueueFullError(
                    f"queue full ({self.queue_size} requests pending)"
                )
            # Reserve the slot; filled in once the shard accepts it.
            self._inflight[request.request_id] = None
        try:
            self._dispatch(request)
        except BaseException:
            with self._inflight_lock:
                self._inflight.pop(request.request_id, None)
            raise

    def _dispatch(self, request: SolveRequest) -> None:
        if request.session_key is not None:
            # Session affinity is strict: carried state lives only in
            # the pattern's *home* shard, so re-routing would silently
            # fork the stream onto a cold session.  While the home
            # shard respawns the request fails fast as a 503 — the
            # client replays it and the stream re-warms on the fresh
            # incarnation (sessions are advisory state; see
            # repro.serve.session).
            home = self.router.home(request.fingerprint)
            if home in self.live_shards() and self._ship(home, request):
                return
            self.metrics.inc("session_503")
            raise QueueFullError(
                "session home shard unavailable (respawning); retry shortly"
            )
        # Two attempts: the routed shard can die between the liveness
        # snapshot and the send; the retry re-routes around it.
        for _ in range(2):
            live = self.live_shards()
            shard_id = self.router.route(request.fingerprint, live=live)
            if shard_id is None:
                raise QueueFullError(
                    "no live shard (workers respawning); retry shortly"
                )
            if shard_id != self.router.home(request.fingerprint):
                self.metrics.inc("shard_reroutes")
            if self._ship(shard_id, request):
                return
        raise QueueFullError("shard worker unavailable; retry shortly")

    def _ship(self, shard_id: int, request: SolveRequest) -> bool:
        """Send one request to one shard; ``False`` = pick another."""
        handle = self.manager.handles[shard_id]
        streaming = request.steps is not None or request.scenarios is not None
        payload = None if streaming else pack_values(request.problem)
        with handle.lock:
            if not handle.alive or handle.conn is None:
                return False
            slab_index: int | None = None
            inline: bytes | None = None
            try:
                if request.fingerprint not in handle.registered:
                    # In-order pipe delivery guarantees the skeleton
                    # arrives before this pattern's first solve.
                    handle.conn.send(
                        (
                            "register",
                            request.fingerprint,
                            problem_to_dict(request.problem),
                        )
                    )
                    handle.registered.add(request.fingerprint)
                if streaming:
                    # Multi-instance payloads ride the pipe inline: the
                    # response is singular, so there is no per-step
                    # slab-recycling cadence worth the ring accounting.
                    entry = _InFlight(
                        request=request,
                        shard_id=shard_id,
                        generation=handle.generation,
                        slab_index=None,
                    )
                    with self._inflight_lock:
                        self._inflight[request.request_id] = entry
                    if request.steps is not None:
                        handle.conn.send(
                            (
                                "sequence",
                                request.request_id,
                                request.fingerprint,
                                request.deadline,
                                request.session_key,
                                [pack_values(p) for p in request.steps],
                            )
                        )
                    else:
                        handle.conn.send(
                            (
                                "scenarios",
                                request.request_id,
                                request.fingerprint,
                                request.deadline,
                                [pack_values(p) for p in request.scenarios],
                            )
                        )
                    return True
                if len(payload) <= handle.ring.slab_size:
                    slab_index = handle.ring.acquire()
                if slab_index is None:
                    # Ring saturated or oversized problem: the payload
                    # rides the pipe instead (backpressure, not a
                    # deadlock).
                    inline = payload
                    self.metrics.inc("shard_inline_fallback")
                    nbytes = len(payload)
                else:
                    nbytes = handle.ring.write(slab_index, payload)
                entry = _InFlight(
                    request=request,
                    shard_id=shard_id,
                    generation=handle.generation,
                    slab_index=slab_index,
                )
                with self._inflight_lock:
                    self._inflight[request.request_id] = entry
                handle.conn.send(
                    (
                        "solve",
                        request.request_id,
                        request.fingerprint,
                        request.deadline,
                        slab_index,
                        nbytes,
                        inline,
                        request.session_key,
                    )
                )
                return True
            except (BrokenPipeError, OSError):
                # The demux thread will see the EOF and respawn; undo
                # our half-shipped state and let the caller re-route.
                handle.alive = False
                if slab_index is not None:
                    handle.ring.release(slab_index)
                with self._inflight_lock:
                    entry = self._inflight.get(request.request_id)
                    if isinstance(entry, _InFlight):
                        self._inflight[request.request_id] = None
                return False

    def _release_slab(self, entry: _InFlight | None) -> None:
        if entry is None or entry.slab_index is None:
            return
        handle = self.manager.handles[entry.shard_id]
        # Only the incarnation that allocated the slab may still hold
        # it; a respawned shard starts from an all-free ring anyway.
        if handle.generation == entry.generation:
            handle.ring.release(entry.slab_index)

    # ------------------------------------------------------------------
    # demux side
    # ------------------------------------------------------------------
    def _demux_loop(self, shard_id: int) -> None:
        handle = self.manager.handles[shard_id]
        while not self._closed:
            with handle.lock:
                conn = handle.conn
            if conn is None:
                return
            try:
                message = conn.recv()
            except (EOFError, OSError):
                if self._closed:
                    return
                self._handle_death(shard_id)
                continue
            kind = message[0]
            if kind == "ready":
                self._death_streak[shard_id] = 0
                with handle.lock:
                    handle.alive = True
                with self._ready_cond:
                    self._ready_cond.notify_all()
            elif kind == "done":
                self._handle_done(shard_id, *message[1:])
            elif kind in ("metrics", "health"):
                query_id, payload = message[1], message[2]
                with self._query_lock:
                    query = self._queries.pop(query_id, None)
                if query is not None:
                    query.payload = payload
                    query.event.set()

    def _handle_done(
        self,
        shard_id: int,
        req_id: int,
        slab_index: int | None,
        status_code: int,
        payload: dict,
    ) -> None:
        with self._inflight_lock:
            entry = self._inflight.pop(req_id, None)
        if entry is None:
            return  # already failed (death sweep) or shut down
        self._release_slab(entry)
        if entry.request.respond(status_code, payload):
            self.metrics.observe(
                "total", time.monotonic() - entry.request.enqueued_at
            )
        elif status_code == 200:
            # The handler's deadline backstop already answered.
            self.metrics.inc("timeouts")

    def _handle_death(self, shard_id: int) -> None:
        """Fail fast, then respawn (runs on the shard's demux thread)."""
        self.metrics.inc("shard_respawns")
        self.manager.reap(shard_id)
        with self._inflight_lock:
            victims = [
                (rid, entry)
                for rid, entry in self._inflight.items()
                if entry is not None and entry.shard_id == shard_id
            ]
            for rid, _ in victims:
                self._inflight.pop(rid, None)
        for _, entry in victims:
            self._release_slab(entry)
            self.metrics.inc("shard_death_503")
            self.metrics.inc("rejected")
            if entry.request.session_key is not None:
                # The home shard's sessions died with it; the client's
                # replay will start a fresh cold session there.
                self.metrics.inc("session_503")
            entry.request.respond(
                503,
                {
                    "status": "rejected",
                    "detail": "shard worker died; request failed fast "
                    "(respawn in progress)",
                },
            )
        with self._query_lock:
            dead_queries = [
                qid
                for qid, query in self._queries.items()
                if query.shard_id == shard_id
            ]
            for qid in dead_queries:
                self._queries.pop(qid).event.set()
        if self._closed:
            return
        streak = self._death_streak.get(shard_id, 0)
        self._death_streak[shard_id] = streak + 1
        if streak:
            # Death before ever reaching "ready": back off before the
            # next attempt (this runs on the shard's own demux thread,
            # so the sleep stalls nobody else).
            time.sleep(min(2.0, 0.05 * (2 ** min(streak, 6))))
            if self._closed:
                return
        self.manager.spawn(shard_id)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _ask(
        self, shard_id: int, kind: str, timeout_s: float = 5.0
    ) -> dict | None:
        handle = self.manager.handles[shard_id]
        query_id = next(_QUERY_IDS)
        query = _Query(shard_id=shard_id)
        with self._query_lock:
            self._queries[query_id] = query
        with handle.lock:
            if not handle.alive or handle.conn is None:
                with self._query_lock:
                    self._queries.pop(query_id, None)
                return None
            try:
                handle.conn.send((kind, query_id))
            except (BrokenPipeError, OSError):
                with self._query_lock:
                    self._queries.pop(query_id, None)
                return None
        query.event.wait(timeout=timeout_s)
        with self._query_lock:
            self._queries.pop(query_id, None)
        return query.payload

    def health(self) -> dict:
        """Per-shard liveness + pattern residency (the /v1/health body)."""
        shards: dict[str, dict] = {}
        live = 0
        total_resident = 0
        for sid in self.manager.shard_ids:
            handle = self.manager.handles[sid]
            if not handle.alive:
                shards[str(sid)] = {
                    "alive": False,
                    "respawning": True,
                    "respawns": handle.respawns,
                }
                continue
            doc = self._ask(sid, "health") or {}
            live += 1
            resident = int(doc.get("patterns_resident", 0))
            total_resident += resident
            shards[str(sid)] = {
                "alive": True,
                "pid": handle.pid,
                "generation": handle.generation,
                "patterns_resident": resident,
                "patterns_registered": doc.get("patterns_registered", 0),
                "fingerprints": doc.get("fingerprints", []),
                "queue_depth": doc.get("queue_depth", 0),
                "solved": doc.get("solved", 0),
            }
        degraded = live < len(self.manager.shard_ids)
        with self._inflight_lock:
            inflight = len(self._inflight)
        return {
            "status": "degraded" if degraded else "ok",
            "sharded": True,
            "shard_count": len(self.manager.shard_ids),
            "live_shards": live,
            "shards": shards,
            "patterns_resident": total_resident,
            "queue_depth": inflight,
            "queue_capacity": self.queue_size,
            "variant": self.pool.variant,
            "c": self.pool.c,
            "batch_policy": self.batch_policy,
        }

    def metrics_snapshot(self) -> dict:
        """One aggregated registry view across the fleet.

        Counters are summed over the front-end registry and every live
        shard's registry; the headline latency series is the
        front-end's end-to-end ``total`` view; per-shard snapshots ride
        along unaggregated (histograms cannot be merged exactly).
        """
        front = self.metrics.snapshot()
        shard_snaps: dict[str, dict] = {}
        for sid in sorted(self.live_shards()):
            snap = self._ask(sid, "metrics")
            if snap is not None:
                shard_snaps[str(sid)] = snap
        counters = dict(front["counters"])
        batch_sizes: dict[str, int] = dict(front["batch_sizes"])
        for snap in shard_snaps.values():
            for name, value in snap["counters"].items():
                counters[name] = counters.get(name, 0) + value
            for size, count in snap.get("batch_sizes", {}).items():
                batch_sizes[size] = batch_sizes.get(size, 0) + count
        lookups = counters["pool_hits"] + counters["pool_misses"]
        sessions = {"active": 0, "steps_total": 0, "delta_binds_total": 0}
        for snap in shard_snaps.values():
            block = snap.get("sessions")
            if block:
                for key in sessions:
                    sessions[key] += block.get(key, 0)
        return {
            "counters": counters,
            "latency": front["latency"],
            "batch_sizes": dict(sorted(batch_sizes.items())),
            "pool_hit_rate": (
                counters["pool_hits"] / lookups if lookups else 0.0
            ),
            "sharded": True,
            "shards": shard_snaps,
            "sessions": sessions,
        }
