"""Consistent-hash routing of pattern fingerprints to shards.

The routing invariant of the sharded serve tier: **every pattern has
one home shard**, so each sparsity pattern compiles and stays warm in
exactly one worker process — the per-process analogue of the pool's
compile-once/solve-many economics, and the reason shard-local schedule
caches never duplicate work.

A classic hash ring (each shard projected onto the ring at ``replicas``
virtual points, a fingerprint routed to the first shard point at or
after its own hash) gives two properties a modulo router lacks:

* **stability under failure** — while a shard is down, only *its*
  patterns move (to their ring successors); every other pattern keeps
  its warm home.  When the shard respawns, its patterns return to it.
* **stability under resize** — growing N shards to N+1 remaps only
  ~1/(N+1) of the patterns.

Everything is derived from SHA-256, so routing is deterministic across
processes and runs — the front-end and any external observer agree on
a pattern's home without coordination.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable

__all__ = ["ConsistentHashRouter"]


def _point(token: str) -> int:
    return int.from_bytes(
        hashlib.sha256(token.encode()).digest()[:8], "big"
    )


class ConsistentHashRouter:
    """Map fingerprints to shard ids over a hash ring."""

    def __init__(self, shard_ids: Iterable[int], *, replicas: int = 64) -> None:
        self.shard_ids = sorted(set(int(s) for s in shard_ids))
        if not self.shard_ids:
            raise ValueError("need at least one shard")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for sid in self.shard_ids:
            for r in range(replicas):
                points.append((_point(f"shard-{sid}#{r}"), sid))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [sid for _, sid in points]

    # ------------------------------------------------------------------
    def home(self, fingerprint: str) -> int:
        """The fingerprint's home shard (ignoring liveness)."""
        return self.route(fingerprint)

    def route(
        self, fingerprint: str, *, live: set[int] | None = None
    ) -> int | None:
        """The shard serving ``fingerprint`` right now.

        With ``live`` given, down shards are skipped by walking the
        ring to the next live owner — the *re-route* path while a
        worker respawns.  Returns ``None`` when no live shard exists.
        """
        if live is not None and not live:
            return None
        start = bisect.bisect_right(self._hashes, _point(fingerprint))
        n = len(self._owners)
        seen: set[int] = set()
        for step in range(n):
            sid = self._owners[(start + step) % n]
            if live is None or sid in live:
                return sid
            seen.add(sid)
            if len(seen) == len(self.shard_ids):
                break
        return None

    def assignments(self, fingerprints: Iterable[str]) -> dict[str, int]:
        """Home shard of each fingerprint (diagnostics/benchmarks)."""
        return {fp: self.home(fp) for fp in fingerprints}
