"""Shard process lifecycle: spawn, monitor, respawn, tear down.

The :class:`ShardManager` owns everything per-shard that outlives a
worker incarnation — the shared-memory :class:`~repro.shard.transport.
SlabRing` (created once, reattached by every respawn) and the
:class:`ShardHandle` bookkeeping — plus the machinery to (re)spawn the
worker process behind it.  Routing, demultiplexing and request state
live one layer up in :class:`~repro.shard.frontend.ShardFrontend`;
keeping the manager mechanism-only makes the crash path easy to
reason about: a respawn is "new pipe, new process, same ring, same
shard id", so the consistent-hash ring never moves a pattern because
of a crash.

Workers are started with the ``spawn`` context: the front-end runs
inside a threaded HTTP server, and forking a threaded process is how
you inherit dead locks.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field

from .transport import SlabRing
from .worker import shard_worker_main

__all__ = ["ShardHandle", "ShardManager"]


@dataclass
class ShardHandle:
    """One shard slot: the stable identity plus its current worker."""

    shard_id: int
    ring: SlabRing
    conn: object | None = None  # parent end of the duplex pipe
    process: object | None = None
    alive: bool = False  # flipped by the front-end on ("ready", ...)
    generation: int = 0  # incremented per (re)spawn
    pid: int | None = None
    respawns: int = 0
    # Patterns registered with the *current* incarnation; cleared on
    # death so the next incarnation re-learns its skeletons.
    registered: set[str] = field(default_factory=set)
    lock: threading.Lock = field(default_factory=threading.Lock)


class ShardManager:
    """Spawn and supervise N shard worker processes."""

    def __init__(
        self,
        *,
        shards: int,
        worker_config: dict,
        slabs: int = 32,
        slab_size: int = 1 << 20,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.worker_config = worker_config
        self.slabs = slabs
        self.slab_size = slab_size
        self._ctx = multiprocessing.get_context("spawn")
        self.handles: dict[int, ShardHandle] = {
            sid: ShardHandle(
                shard_id=sid,
                ring=SlabRing(slabs=slabs, slab_size=slab_size),
            )
            for sid in range(shards)
        }

    @property
    def shard_ids(self) -> list[int]:
        return sorted(self.handles)

    # ------------------------------------------------------------------
    def spawn(self, shard_id: int) -> ShardHandle:
        """(Re)start one shard's worker process (same ring, new pipe)."""
        handle = self.handles[shard_id]
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=shard_worker_main,
            name=f"repro-shard-{shard_id}",
            args=(
                shard_id,
                child_conn,
                handle.ring.name,
                self.slabs,
                self.slab_size,
                self.worker_config,
            ),
            daemon=True,
        )
        process.start()
        # Close the parent's copy of the child end so a dead worker
        # surfaces as EOF on ``parent_conn.recv()`` immediately.
        child_conn.close()
        with handle.lock:
            handle.conn = parent_conn
            handle.process = process
            handle.generation += 1
            handle.respawns = handle.generation - 1
            handle.pid = process.pid
            handle.alive = False
            handle.registered.clear()
        return handle

    def spawn_all(self) -> None:
        for sid in self.shard_ids:
            self.spawn(sid)

    # ------------------------------------------------------------------
    def kill(self, shard_id: int) -> None:
        """SIGKILL one worker (failure injection for tests/CI)."""
        process = self.handles[shard_id].process
        if process is not None and process.is_alive():
            process.kill()

    def reap(self, shard_id: int) -> None:
        """Collect a dead incarnation's process and pipe."""
        handle = self.handles[shard_id]
        with handle.lock:
            conn, process = handle.conn, handle.process
            handle.alive = False
            handle.registered.clear()
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if process is not None:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Graceful shutdown of every worker, then reclaim the rings."""
        deadline = time.monotonic() + 10.0
        for handle in self.handles.values():
            if handle.conn is not None:
                try:
                    handle.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for handle in self.handles.values():
            if handle.process is not None:
                handle.process.join(
                    timeout=max(0.1, deadline - time.monotonic())
                )
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=2.0)
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:  # pragma: no cover
                    pass
            handle.alive = False
        for handle in self.handles.values():
            handle.ring.close()
            handle.ring.unlink()
