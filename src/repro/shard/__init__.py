"""Sharded multi-process serve tier.

Scale the serve tier past the GIL by running N worker processes, each
owning a private warm :class:`~repro.serve.pool.SolverPool` and
adaptive batching shard.  A consistent-hash router keyed on the
schedule-cache pattern fingerprint pins every sparsity pattern to one
home shard (compile-once/solve-many per *process*), a shared-memory
slab ring moves only the numeric values per request, and a thin
:class:`ShardFrontend` does admission, routing, deadline propagation
and response demultiplexing — including failing in-flight requests
fast and respawning the worker when a shard dies.

Layering::

    ShardFrontend        routing + admission + demux (threads)
      ShardManager       process lifecycle, one SlabRing per shard
        ShardWorker      pipe protocol around a SolveEngine (process)
    ConsistentHashRouter pattern fingerprint -> home shard
    transport            value codec + shared-memory slab ring
"""

from .frontend import ShardFrontend
from .manager import ShardHandle, ShardManager
from .router import ConsistentHashRouter
from .transport import (
    ShardValues,
    SlabOverflow,
    SlabRing,
    pack_values,
    packed_size,
    rebuild_problem,
    unpack_values,
)
from .worker import ShardWorker, shard_worker_main

__all__ = [
    "ConsistentHashRouter",
    "ShardFrontend",
    "ShardHandle",
    "ShardManager",
    "ShardValues",
    "ShardWorker",
    "SlabOverflow",
    "SlabRing",
    "pack_values",
    "packed_size",
    "rebuild_problem",
    "shard_worker_main",
    "unpack_values",
]
