"""ASCII sparsity-pattern rendering (Fig. 2 / Fig. 3 top row).

A coarse density plot: the matrix is tiled into cells and each cell is
drawn with a glyph from ``" .:*#"`` by fill fraction.
"""

from __future__ import annotations

import numpy as np

from ..linalg import CSCMatrix

__all__ = ["render_sparsity"]

_SHADES = " .:*#"


def render_sparsity(matrix: CSCMatrix, *, max_cells: int = 60) -> str:
    """Render a matrix's sparsity pattern as ASCII art.

    Parameters
    ----------
    matrix:
        The sparse matrix.
    max_cells:
        Maximum character-grid dimension; larger matrices are tiled.
    """
    nr, nc = matrix.shape
    if nr == 0 or nc == 0:
        return "(empty matrix)"
    rows_per_cell = max(1, -(-nr // max_cells))
    cols_per_cell = max(1, -(-nc // max_cells))
    grid = np.zeros(
        (-(-nr // rows_per_cell), -(-nc // cols_per_cell)), dtype=int
    )
    r, c, _ = matrix.to_coo()
    np.add.at(grid, (r // rows_per_cell, c // cols_per_cell), 1)
    cell_area = rows_per_cell * cols_per_cell
    lines = []
    for row in grid:
        line = "".join(
            _SHADES[min(4, int(np.ceil(4 * v / cell_area)))] for v in row
        )
        lines.append("|" + line + "|")
    return "\n".join(lines)
