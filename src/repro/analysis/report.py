"""ASCII rendering of the paper's tables and figure series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep the formatting consistent across benches.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "ascii_table",
    "series_block",
    "kv_block",
    "format_si",
    "suite_summary_block",
]


def format_si(value: float, *, digits: int = 3) -> str:
    """Engineering-notation formatting (1.23e9 -> '1.23G')."""
    if value == 0:
        return "0"
    prefixes = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
    ]
    mag = abs(value)
    for scale, suffix in prefixes:
        if mag >= scale:
            return f"{value / scale:.{digits}g}{suffix}"
    return f"{value:.{digits}g}"


def ascii_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], *, title: str = ""
) -> str:
    """Render a fixed-width table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(
        "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |"
    )
    lines.append(sep)
    for row in str_rows:
        lines.append(
            "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
        )
    lines.append(sep)
    return "\n".join(lines)


def series_block(
    title: str, xs: Sequence[object], series: dict[str, Sequence[float]]
) -> str:
    """Render named series over a shared x-axis (a figure's data)."""
    headers = ["x"] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [format_si(series[k][i]) for k in series])
    return ascii_table(headers, rows, title=title)


def kv_block(title: str, pairs: Iterable[tuple[str, object]]) -> str:
    """Render key/value rows."""
    return ascii_table(["metric", "value"], list(pairs), title=title)


def suite_summary_block(
    *,
    problems: int,
    jobs: int,
    wall_seconds: float,
    compile_seconds: float,
    solve_seconds: float,
    cache_hits: int | None = None,
    cache_misses: int | None = None,
    extra_rows: Iterable[tuple[str, object]] = (),
) -> str:
    """The suite run footer: per-stage wall time, parallel fan-out and
    compilation-cache effectiveness.

    ``compile_seconds``/``solve_seconds`` are summed across problems
    (total work), so their ratio to ``wall_seconds`` is the achieved
    parallel speedup.  Cache rows appear only when a cache was active.
    """
    work = compile_seconds + solve_seconds
    rows: list[tuple[str, object]] = [
        ("problems", problems),
        ("jobs", jobs),
        ("wall time", f"{wall_seconds:.2f} s"),
        ("compile time (sum over problems)", f"{compile_seconds:.2f} s"),
        ("solve time (sum over problems)", f"{solve_seconds:.2f} s"),
        ("parallel speedup (work/wall)", f"{work / wall_seconds:.2f}x"
         if wall_seconds > 0 else "n/a"),
    ]
    if cache_hits is not None or cache_misses is not None:
        rows.append(("cache hits / misses",
                     f"{cache_hits or 0} / {cache_misses or 0}"))
    rows.extend(extra_rows)
    return kv_block("suite summary", rows)
