"""ASCII rendering of the paper's tables and figure series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep the formatting consistent across benches.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["ascii_table", "series_block", "kv_block", "format_si"]


def format_si(value: float, *, digits: int = 3) -> str:
    """Engineering-notation formatting (1.23e9 -> '1.23G')."""
    if value == 0:
        return "0"
    prefixes = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
    ]
    mag = abs(value)
    for scale, suffix in prefixes:
        if mag >= scale:
            return f"{value / scale:.{digits}g}{suffix}"
    return f"{value:.{digits}g}"


def ascii_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], *, title: str = ""
) -> str:
    """Render a fixed-width table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(
        "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |"
    )
    lines.append(sep)
    for row in str_rows:
        lines.append(
            "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
        )
    lines.append(sep)
    return "\n".join(lines)


def series_block(
    title: str, xs: Sequence[object], series: dict[str, Sequence[float]]
) -> str:
    """Render named series over a shared x-axis (a figure's data)."""
    headers = ["x"] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [format_si(series[k][i]) for k in series])
    return ascii_table(headers, rows, title=title)


def kv_block(title: str, pairs: Iterable[tuple[str, object]]) -> str:
    """Render key/value rows."""
    return ascii_table(["metric", "value"], list(pairs), title=title)
