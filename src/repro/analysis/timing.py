"""End-to-end runtime, utilization, energy and jitter evaluation
(Fig. 10, Fig. 11, Table III).

For every (problem, variant) the evaluation performs one reference
solve (shared by all platforms — the algorithm trace is platform-
independent), prices the MIB prototype from its compiled kernel
schedules, and prices each baseline platform from its analytical model.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..backends.mib import MIBSolver
from ..backends.models import (
    PLATFORMS,
    Platform,
    cpu_platform_for,
    model_runtime,
    sample_jittered_runtimes,
)
from ..compiler import ScheduleCache
from ..problems import ProblemSpec, parallel_map
from ..solver import QPProblem, Settings

__all__ = [
    "HOST_IDLE_WATTS",
    "MIB_JITTER_CV",
    "PlatformMeasurement",
    "ProblemEvaluation",
    "evaluate_problem",
    "evaluate_suite",
    "geomean",
    "jitter_experiment",
    "process_cache",
]

HOST_IDLE_WATTS = 22.0  # the CPU idles while FPGA/GPU devices solve
MIB_JITTER_CV = 0.005  # residual PCIe/DMA variability; compute is exact


def geomean(values) -> float:
    """Geometric mean (the paper's aggregate for all ratios)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0 or np.any(arr <= 0):
        raise ValueError("geomean needs positive values")
    return float(np.exp(np.mean(np.log(arr))))


@dataclass(frozen=True)
class PlatformMeasurement:
    """One platform's modeled performance on one problem."""

    platform: str
    runtime_s: float
    peak_flops: float
    total_flops: float
    device_watts: float
    system_watts: float
    jitter_cv: float

    @property
    def utilization(self) -> float:
        """Achieved fraction of peak FLOPs (Fig. 10 middle row)."""
        return self.total_flops / self.runtime_s / self.peak_flops

    @property
    def problems_per_joule_device(self) -> float:
        """Problems per second per watt, device power only."""
        return 1.0 / (self.runtime_s * self.device_watts)

    @property
    def problems_per_joule_system(self) -> float:
        return 1.0 / (self.runtime_s * self.system_watts)


@dataclass(frozen=True)
class ProblemEvaluation:
    """All platforms on one (problem, variant) cell."""

    name: str
    domain: str
    dimension: int
    nnz: int
    variant: str
    iterations: int
    measurements: dict[str, PlatformMeasurement]
    # Per-stage observability.  Wall times never participate in
    # equality: a --jobs 4 run must compare equal to --jobs 1 even
    # though each stage's wall clock differs run to run.
    compile_seconds: float = field(default=0.0, compare=False)
    solve_seconds: float = field(default=0.0, compare=False)
    cache_hit: bool = field(default=False, compare=False)
    # Batched-replay observability (``batch > 1``): wall time of one
    # ``solve_batch`` pass over ``batch`` lanes of this pattern.
    batch: int = field(default=1, compare=False)
    batch_solve_seconds: float = field(default=0.0, compare=False)
    # Host-dispatch observability: how the simulator-executed kernels
    # would run and what each iteration costs the host in numpy
    # dispatches under that mode.  Crossings are overhead bookkeeping,
    # not simulated time, so they never participate in equality.
    execution: str = field(default="replay", compare=False)
    iteration_crossings: int = field(default=0, compare=False)

    @property
    def batch_amortized_seconds(self) -> float:
        """Host wall seconds per solve inside the batched pass."""
        if self.batch <= 1:
            return self.solve_seconds
        return self.batch_solve_seconds / self.batch

    def speedup_over(self, baseline: str, target: str = "mib") -> float:
        return (
            self.measurements[baseline].runtime_s
            / self.measurements[target].runtime_s
        )

    def efficiency_gain_over(
        self, baseline: str, *, system: bool = False, target: str = "mib"
    ) -> float:
        t = self.measurements[target]
        b = self.measurements[baseline]
        if system:
            return t.problems_per_joule_system / b.problems_per_joule_system
        return t.problems_per_joule_device / b.problems_per_joule_device


# FPGA device power (Section V-C: 12 W idle, ~18 W full load).  The
# efficiency metric divides by the *average of the power trace over the
# solve*, which sits between the two because the datapath is not
# saturated every cycle; 13 W reproduces the paper's efficiency ratios.
_MIB_LOAD_WATTS = 13.0


def evaluate_problem(
    problem: QPProblem,
    *,
    domain: str = "",
    dimension: int = 0,
    variant: str = "direct",
    c: int = 32,
    settings: Settings | None = None,
    platforms: dict[str, Platform] | None = None,
    baselines: tuple[str, ...] | None = None,
    cache: ScheduleCache | None = None,
    execution: str = "replay",
    batch: int = 1,
    array_backend: str = "auto",
) -> ProblemEvaluation:
    """Evaluate one problem across the MIB prototype and baselines.

    The direct variant is compared against the CPU only (the paper:
    OSQP offers no GPU direct backend, and RSQP supports only the
    indirect variant).  With ``cache``, compilation is served from the
    pattern-keyed cache when possible; the evaluation records the
    compile/solve stage wall times and whether the cache hit.
    ``execution`` selects how any simulator-executed kernels run:
    ``"replay"`` per-kernel traces, the ``"interpret"`` oracle, or
    ``"fused"`` whole-iteration traces; the evaluation records the
    mode and its per-iteration host→numpy crossing cost.

    ``batch > 1`` (direct variant only) additionally times one
    :meth:`~repro.backends.MIBSolver.solve_batch` pass over ``batch``
    lanes of this pattern, recording the amortized host wall time per
    solve — the serve layer's coalesced-batch economics measured on
    the suite grid.  The modeled platform measurements are untouched
    (they price one solve).
    """
    platforms = platforms or PLATFORMS
    if baselines is None:
        baselines = ("cpu",) if variant == "direct" else ("cpu", "gpu", "rsqp")
    mib = MIBSolver(
        problem,
        variant=variant,
        c=c,
        settings=settings,
        cache=cache,
        execution=execution,
        array_backend=array_backend,
    )
    t_solve = time.perf_counter()
    report = mib.solve()
    solve_seconds = time.perf_counter() - t_solve
    batch_solve_seconds = 0.0
    if batch > 1 and variant == "direct":
        t_batch = time.perf_counter()
        mib.solve_batch([problem] * batch)
        batch_solve_seconds = time.perf_counter() - t_batch
    result = report.result
    total_flops = result.trace.total_flops
    measurements: dict[str, PlatformMeasurement] = {}
    mib_peak = 2.0 * c * report.clock_hz  # one FMA per lane per clock
    measurements["mib"] = PlatformMeasurement(
        platform=f"MIB C={c}",
        runtime_s=report.runtime_seconds,
        peak_flops=mib_peak,
        total_flops=total_flops,
        device_watts=_MIB_LOAD_WATTS,
        system_watts=_MIB_LOAD_WATTS + HOST_IDLE_WATTS,
        jitter_cv=MIB_JITTER_CV,
    )
    link_words = problem.n + problem.m
    for key in baselines:
        plat = cpu_platform_for(variant) if key == "cpu" else platforms[key]
        runtime = model_runtime(plat, result, vector_words_per_iter=link_words)
        if key == "cpu":
            # The CPU is the whole system.
            system_watts = plat.load_watts
        else:
            # Accelerators keep the host awake at idle power.
            system_watts = plat.load_watts + HOST_IDLE_WATTS
        measurements[key] = PlatformMeasurement(
            platform=plat.name,
            runtime_s=runtime,
            peak_flops=plat.peak_flops,
            total_flops=total_flops,
            device_watts=plat.load_watts,
            system_watts=system_watts,
            jitter_cv=plat.jitter_cv,
        )
    return ProblemEvaluation(
        name=problem.name,
        domain=domain or problem.name.split("-")[0],
        dimension=dimension,
        nnz=problem.nnz,
        variant=variant,
        iterations=result.iterations,
        measurements=measurements,
        compile_seconds=mib.compile_seconds,
        solve_seconds=solve_seconds,
        cache_hit=mib.cache_hit,
        batch=batch if variant == "direct" else 1,
        batch_solve_seconds=batch_solve_seconds,
        execution=execution,
        iteration_crossings=mib.iteration_crossings(),
    )


# One ScheduleCache per (process, cache_dir): worker processes of the
# parallel suite driver share compiled patterns through the directory,
# while repeated serial calls share the in-memory LRU.
_PROCESS_CACHES: dict[str, ScheduleCache] = {}


def process_cache(cache_dir: str | Path | None) -> ScheduleCache | None:
    """The calling process's cache bound to ``cache_dir`` (or None)."""
    if cache_dir is None:
        return None
    key = str(cache_dir)
    cache = _PROCESS_CACHES.get(key)
    if cache is None:
        cache = _PROCESS_CACHES[key] = ScheduleCache(cache_dir)
    return cache


def _evaluate_spec(task) -> ProblemEvaluation:
    """Top-level worker (picklable) for the parallel suite driver."""
    (spec, variant, c, settings, seed, cache_dir, execution, batch,
     array_backend) = task
    return evaluate_problem(
        spec.generate(seed),
        domain=spec.domain,
        dimension=spec.dimension,
        variant=variant,
        c=c,
        settings=settings,
        cache=process_cache(cache_dir),
        execution=execution,
        batch=batch,
        array_backend=array_backend,
    )


def evaluate_suite(
    specs: list[ProblemSpec],
    *,
    variant: str = "indirect",
    c: int = 32,
    settings: Settings | None = None,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    execution: str = "replay",
    batch: int = 1,
    array_backend: str = "auto",
) -> list[ProblemEvaluation]:
    """Evaluate a set of benchmark specs under one variant.

    ``jobs > 1`` fans the per-problem compile+solve work out across
    processes with results in spec order — deterministically identical
    to the serial run.  ``cache_dir`` shares compiled patterns across
    workers and across reruns through the on-disk schedule cache; when
    it is not given, a parallel run still shares compilations between
    sibling workers through a session-scoped temporary directory
    (worker processes have no shared memory, so without a disk cache
    every worker would recompile patterns its siblings already built).
    ``batch`` forwards to :func:`evaluate_problem`: each cell also
    times one batched replay pass over that many lanes.
    """
    if jobs > 1 and cache_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-suite-cache-") as tmp:
            return evaluate_suite(
                specs,
                variant=variant,
                c=c,
                settings=settings,
                seed=seed,
                jobs=jobs,
                cache_dir=tmp,
                execution=execution,
                batch=batch,
                array_backend=array_backend,
            )
    tasks = [
        (spec, variant, c, settings, seed,
         str(cache_dir) if cache_dir is not None else None, execution,
         batch, array_backend)
        for spec in specs
    ]
    return parallel_map(_evaluate_spec, tasks, jobs=jobs)


def jitter_experiment(
    evaluation: ProblemEvaluation,
    *,
    n_runs: int = 20,
    seed: int = 0,
) -> dict[str, float]:
    """Repeated-solve normalized jitter per platform (Fig. 11).

    Each problem is "executed" ``n_runs`` times (the paper uses 20);
    the reported metric is the standard deviation of solve time
    normalized by the mean solve time.
    """
    rng = np.random.default_rng(seed)
    out: dict[str, float] = {}
    for key, m in evaluation.measurements.items():
        samples = sample_jittered_runtimes(m.runtime_s, m.jitter_cv, n_runs, rng)
        out[key] = float(np.std(samples) / np.mean(samples))
    return out
