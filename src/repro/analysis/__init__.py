"""Analysis layer: FLOP profiling (Fig. 3), runtime/energy/jitter
evaluation (Fig. 10/11, Table III) and report rendering."""

from .flops import FlopsProfile, profile_problem, profile_suite
from .report import (
    ascii_table,
    format_si,
    kv_block,
    series_block,
    suite_summary_block,
)
from .sparsity import render_sparsity
from .timing import (
    HOST_IDLE_WATTS,
    MIB_JITTER_CV,
    PlatformMeasurement,
    ProblemEvaluation,
    evaluate_problem,
    evaluate_suite,
    geomean,
    jitter_experiment,
    process_cache,
)

__all__ = [
    "FlopsProfile",
    "HOST_IDLE_WATTS",
    "MIB_JITTER_CV",
    "PlatformMeasurement",
    "ProblemEvaluation",
    "ascii_table",
    "evaluate_problem",
    "evaluate_suite",
    "format_si",
    "geomean",
    "jitter_experiment",
    "kv_block",
    "process_cache",
    "profile_problem",
    "profile_suite",
    "render_sparsity",
    "series_block",
    "suite_summary_block",
]
