"""FLOP profiling of the two solver variants (Fig. 3).

The paper's Fig. 3 shows, per application domain and problem scale,
(a) the total FLOPs of OSQP-direct vs OSQP-indirect and (b) the
breakdown of those FLOPs into the four primitive computation patterns
(MAC, vector permutation across register files, column elimination,
element-wise).  The reproduction obtains exactly this data from the
operation trace the reference solver records while solving each
problem to termination.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..problems import ProblemSpec
from ..solver import OpTrace, Primitive, QPProblem, Settings, solve

__all__ = ["FlopsProfile", "profile_problem", "profile_suite"]


@dataclass(frozen=True)
class FlopsProfile:
    """FLOP accounting of one (problem, variant) solve."""

    name: str
    domain: str
    dimension: int
    nnz: int
    variant: str
    iterations: int
    total_flops: float
    mac: float
    permute: float
    column_elim: float
    elementwise: float
    by_operation: dict[str, float]

    @classmethod
    def from_trace(
        cls,
        *,
        name: str,
        domain: str,
        dimension: int,
        nnz: int,
        variant: str,
        iterations: int,
        trace: OpTrace,
    ) -> "FlopsProfile":
        return cls(
            name=name,
            domain=domain,
            dimension=dimension,
            nnz=nnz,
            variant=variant,
            iterations=iterations,
            total_flops=trace.total_flops,
            mac=trace.by_primitive[Primitive.MAC],
            permute=trace.by_primitive[Primitive.PERMUTE],
            column_elim=trace.by_primitive[Primitive.COLUMN_ELIM],
            elementwise=trace.by_primitive[Primitive.ELEMENTWISE],
            by_operation=dict(trace.by_operation),
        )

    def fractions(self) -> dict[str, float]:
        """Primitive shares (the stacked bars of Fig. 3, rows 3-4)."""
        total = self.total_flops or 1.0
        return {
            "mac": self.mac / total,
            "permute": self.permute / total,
            "column_elim": self.column_elim / total,
            "elementwise": self.elementwise / total,
        }


def profile_problem(
    problem: QPProblem,
    *,
    domain: str = "",
    dimension: int = 0,
    variant: str = "direct",
    settings: Settings | None = None,
) -> FlopsProfile:
    """Solve one problem and return its FLOP profile."""
    result = solve(problem, variant=variant, settings=settings)
    return FlopsProfile.from_trace(
        name=problem.name,
        domain=domain or problem.name.split("-")[0],
        dimension=dimension,
        nnz=problem.nnz,
        variant=variant,
        iterations=result.iterations,
        trace=result.trace,
    )


def profile_suite(
    specs: list[ProblemSpec],
    *,
    variants: tuple[str, ...] = ("direct", "indirect"),
    settings: Settings | None = None,
    seed: int = 0,
) -> list[FlopsProfile]:
    """Profile a set of benchmark specs under both variants."""
    profiles: list[FlopsProfile] = []
    for spec in specs:
        problem = spec.generate(seed)
        for variant in variants:
            profiles.append(
                profile_problem(
                    problem,
                    domain=spec.domain,
                    dimension=spec.dimension,
                    variant=variant,
                    settings=settings,
                )
            )
    return profiles
